"""The unit of work of the experiment engine: one picklable simulation cell.

Every cell of the paper's evaluation -- one (experiment, workload,
configuration-variant, seed) combination -- is described by an
:class:`ExperimentJob`.  A job is a frozen dataclass of plain values, so it

* pickles cleanly across :class:`concurrent.futures.ProcessPoolExecutor`
  workers (the machine itself is rebuilt inside the worker),
* hashes and compares by value, letting the runner deduplicate identical
  cells within a batch, and
* derives a deterministic :meth:`~ExperimentJob.cache_key` from its settings
  hash, which is what makes the on-disk result cache of
  :mod:`repro.sim.runner` sound: two jobs share a key exactly when they
  describe the same simulation.

:func:`execute_job` maps a job to its JSON-serializable ``{metric: value}``
dictionary.  It is a module-level function on purpose: process-pool workers
import it by reference.  The experiment *specs* registered in
:mod:`repro.sim.specs` enumerate jobs, hand them to a runner, and assemble
the result dataclasses of :mod:`repro.sim.experiments` from the returned
metrics.

Job *kinds* are pluggable: :func:`register_job_kind` maps a kind name to its
cell executor, so new cell families join the engine without touching
:mod:`repro.sim.runner` or this module.  The simulation-shaped kinds below
register themselves here; the fault-injection campaign registers a
``faults`` kind from :mod:`repro.faults.cells` (imported by the ``repro``
package, so pool workers see the registration too).  Kinds compose with the
two other extension seams: a new *experiment* over existing kinds is an
:class:`~repro.sim.specs.ExperimentSpec`, and a new execution substrate is
a :class:`~repro.sim.runner.RunnerBackend`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing
from dataclasses import asdict, dataclass
from enum import Enum
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Tuple, Union

import repro
from repro.common.stats import mean
from repro.config.presets import evaluation_system_config, paper_system_config
from repro.config.system import ConsistencyModel, PabLookupMode, SystemConfig
from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.transitions import TransitionFlavor
from repro.cpu.fastpath import FastTimingModel
from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.errors import ExperimentError
from repro.sim.results import SimulationResult
from repro.sim.settings import ExperimentSettings
from repro.sim.simulator import Simulator
from repro.sim.timeline import Timeline
from repro.virt.vcpu import ReliabilityMode

#: Bump whenever the meaning of a job's metrics changes incompatibly; old
#: on-disk cache entries are then ignored.  Simulator *behaviour* changes do
#: not need a bump: the cache key also digests the package's source code
#: (see :func:`code_fingerprint`), so results simulated by different code
#: are never served as current.
#:
#: Version 2: metric dicts are assembled into typed ``ResultFrame`` rows
#: (:mod:`repro.sim.frames`); pre-frame entries must be clean misses rather
#: than risk mis-assembling into frames.  ``repro cache stats`` reports the
#: per-version breakdown of whatever is on disk.
#:
#: Version 3: results live in the packed segment store
#: (:mod:`repro.sim.store`): records gain ``kind``/``ts`` envelope fields
#: and payloads are compact (no pretty-printing).  Per-file v2 entries
#: written by older code are clean misses; ``repro cache migrate`` packs
#: (and current-version legacy files read through) without re-executing.
CACHE_SCHEMA_VERSION = 3

_CODE_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``repro`` source file, computed once per process.

    Folding this into the job cache keys makes stale cache hits structurally
    impossible: any edit to the package invalidates every cached cell, with
    no human in the loop to forget a version bump.  (Falls back to the
    package version when the sources are not on disk.)
    """
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        digest = hashlib.sha256()
        package_root = Path(repro.__file__).parent
        sources = sorted(package_root.rglob("*.py"))
        if not sources:
            digest.update(getattr(repro, "__version__", "unknown").encode("utf-8"))
        for path in sources:
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT

#: Configuration labels of Figure 5, in presentation order.
FIGURE5_CONFIGS = ("no-dmr-2x", "no-dmr", "reunion")

#: Configuration labels of Figure 6, in presentation order.
FIGURE6_CONFIGS = ("dmr-base", "mmm-ipc", "mmm-tp")

#: Variants of the window/consistency ablation, in presentation order.
ABLATION_VARIANTS: Dict[str, Tuple[int, ConsistencyModel]] = {
    "window128-sc": (128, ConsistencyModel.SEQUENTIAL),
    "window256-sc": (256, ConsistencyModel.SEQUENTIAL),
    "window256-tso": (256, ConsistencyModel.TSO),
}

#: Values allowed in a job's ``params`` payload (JSON scalars).
ParamValue = Union[int, float, str, bool, None]


@dataclass(frozen=True)
class ExperimentJob:
    """One (experiment, workload, config-variant, seed) experiment cell."""

    #: Which cell family the job belongs to -- any name registered via
    #: :func:`register_job_kind` (``figure5``, ``figure6``, ``pab``,
    #: ``table1``, ``table2``, ``ablation``, ``faults``, ...).
    kind: str
    #: Workload name for simulation cells; kinds without a workload axis
    #: repurpose the field for their primary axis (fault cells store the
    #: fault-site name here).
    workload: str
    #: Kind-specific configuration label (Figure 5/6 configuration, PAB
    #: lookup mode, ablation variant, campaign configuration); empty when
    #: the kind has none.
    variant: str = ""
    seed: int = 0
    #: Sweep settings for the cells driven by :class:`ExperimentSettings`
    #: (normalised via :meth:`ExperimentSettings.cell_settings`).
    settings: Optional[ExperimentSettings] = None
    #: Explicit machine configuration for the cells that do not derive it
    #: from ``settings`` (Table 1 and Table 2).
    config: Optional[SystemConfig] = None
    #: Extra kind-specific knobs as a sorted tuple of (name, scalar) pairs.
    params: Tuple[Tuple[str, ParamValue], ...] = ()

    def param(self, name: str, default: ParamValue = None) -> ParamValue:
        """Read one entry of the ``params`` payload."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def label(self) -> str:
        """Human-readable cell name for logs and error messages."""
        parts = [self.kind, self.workload]
        if self.variant:
            parts.append(self.variant)
        parts.append(f"seed{self.seed}")
        return "/".join(parts)

    def to_dict(self) -> Dict[str, object]:
        """A canonical JSON-safe description of the cell."""
        return {
            "schema": CACHE_SCHEMA_VERSION,
            "kind": self.kind,
            "workload": self.workload,
            "variant": self.variant,
            "seed": self.seed,
            "settings": asdict(self.settings) if self.settings is not None else None,
            "config": asdict(self.config) if self.config is not None else None,
            "params": dict(self.params),
        }

    def cache_key(self) -> str:
        """Deterministic digest of everything that influences the result:
        the full cell description plus the simulating code itself."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        payload = code_fingerprint() + "\0" + canonical
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------ #
    # Wire format (the distributed runner ships cells as JSON)
    # ------------------------------------------------------------------ #

    def to_wire(self) -> Dict[str, object]:
        """A JSON-safe description that :meth:`from_wire` rebuilds exactly.

        Unlike :meth:`to_dict` (whose ``params`` mapping loses pair order),
        the wire form keeps ``params`` as an ordered list of pairs and
        embeds the sender's :meth:`cache_key`, so a receiving worker can
        verify that its rebuild -- and its *code* -- agree with the sender
        before simulating anything.
        """
        payload = self.to_dict()
        payload["params"] = [[name, value] for name, value in self.params]
        payload["key"] = self.cache_key()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "ExperimentJob":
        """Rebuild a job from a :meth:`to_dict`/:meth:`to_wire` payload.

        ``params`` may be the ordered pair list of the wire form or the
        mapping of :meth:`to_dict` (rebuilt sorted -- the order every
        built-in enumerator uses).  ``settings`` and ``config`` are
        reconstructed into their dataclasses, enums included, so equality
        and :meth:`cache_key` survive a JSON round trip.
        """
        raw_params = payload.get("params") or ()
        if isinstance(raw_params, Mapping):
            params = tuple(sorted(raw_params.items()))
        else:
            params = tuple((str(name), value) for name, value in raw_params)
        settings = payload.get("settings")
        config = payload.get("config")
        return cls(
            kind=str(payload["kind"]),
            workload=str(payload["workload"]),
            variant=str(payload.get("variant") or ""),
            seed=int(payload.get("seed") or 0),
            settings=(
                ExperimentSettings.from_dict(settings)
                if isinstance(settings, Mapping)
                else None
            ),
            config=(
                rebuild_dataclass(SystemConfig, config)
                if isinstance(config, Mapping)
                else None
            ),
            params=params,
        )

    @classmethod
    def from_wire(
        cls, payload: Mapping[str, object], verify_key: bool = True
    ) -> "ExperimentJob":
        """Rebuild a wire payload, verifying the embedded cache key.

        A key mismatch means the rebuild is not the cell the sender
        described -- most likely the two ends run *different code* (the
        cache key digests the package sources), in which case executing
        the cell would poison the shared cache with results the sender's
        code never produced.
        """
        job = cls.from_dict(payload)
        expected = payload.get("key")
        if verify_key and expected is not None and job.cache_key() != expected:
            raise ExperimentError(
                f"wire cell {job.label} rebuilds with cache key "
                f"{job.cache_key()[:12]}..., but the sender computed "
                f"{str(expected)[:12]}...; the two ends are running "
                "different repro code (or the payload was corrupted)"
            )
        return job


def rebuild_dataclass(cls: type, payload: Mapping[str, object]) -> object:
    """Rebuild a (possibly nested) plain-value dataclass from ``asdict`` output.

    Field types are resolved via ``typing.get_type_hints``; nested
    dataclasses recurse and ``Enum`` fields are rebuilt from their values
    (the configuration enums are all value-based ``str`` enums).  Unknown
    payload keys are ignored so newer senders stay readable.
    """
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, object] = {}
    for field in dataclasses.fields(cls):
        if field.name not in payload:
            continue
        kwargs[field.name] = _rebuild_value(hints[field.name], payload[field.name])
    return cls(**kwargs)


def _rebuild_value(hint: object, value: object) -> object:
    if value is None:
        return None
    origin = typing.get_origin(hint)
    if origin is Union:
        for arm in typing.get_args(hint):
            if arm is type(None):
                continue
            return _rebuild_value(arm, value)
    if isinstance(hint, type):
        if dataclasses.is_dataclass(hint) and isinstance(value, Mapping):
            return rebuild_dataclass(hint, value)
        if issubclass(hint, Enum):
            return hint(value)
    return value


# ===================================================================== #
# Job-kind registry
# ===================================================================== #

#: A cell executor: one job in, a flat JSON-serializable metrics dict out.
JobExecutor = Callable[[ExperimentJob], Dict[str, object]]

_EXECUTORS: Dict[str, JobExecutor] = {}


def register_job_kind(
    kind: str,
    executor: Optional[JobExecutor] = None,
    *,
    replace: bool = False,
) -> Callable[[JobExecutor], JobExecutor]:
    """Register the executor of one job kind (usable as a decorator).

    The executor must be a picklable module-level function: process-pool
    workers re-import the module that registers it, so the registration must
    be an import-time side effect of that module.  Registering an existing
    kind raises unless ``replace=True``; re-registering the *same* function
    -- by identity, or by module and qualified name after a module reload --
    is a harmless no-op.
    """

    def _register(function: JobExecutor) -> JobExecutor:
        current = _EXECUTORS.get(kind)
        same = current is not None and (
            current is function
            or (
                getattr(current, "__module__", None) == getattr(function, "__module__", None)
                and getattr(current, "__qualname__", None) == getattr(function, "__qualname__", None)
            )
        )
        if current is not None and not same and not replace:
            raise ExperimentError(f"job kind {kind!r} is already registered")
        _EXECUTORS[kind] = function
        return function

    if executor is None:
        return _register
    return _register(executor)


def registered_job_kinds() -> Tuple[str, ...]:
    """The job kinds the engine currently knows how to execute, sorted."""
    return tuple(sorted(_EXECUTORS))


def execute_job(job: ExperimentJob) -> Dict[str, object]:
    """Run one cell and return its flat metric dictionary.

    Module-level so that :class:`concurrent.futures.ProcessPoolExecutor`
    workers can import it by reference; the cell's machinery is rebuilt
    inside the worker from the job's plain-value description.  Dispatches on
    the job-kind registry, so every registered cell family -- simulation
    cells below, fault-campaign cells from :mod:`repro.faults.cells` --
    runs through the same runner.
    """
    try:
        executor = _EXECUTORS[job.kind]
    except KeyError:
        known = ", ".join(registered_job_kinds()) or "none"
        raise ExperimentError(
            f"unknown experiment job kind {job.kind!r} (registered kinds: {known})"
        ) from None
    return executor(job)


# ===================================================================== #
# Machine builders
# ===================================================================== #


def figure5_machine(
    settings: ExperimentSettings, workload: str, configuration: str, seed: int
) -> MixedModeMachine:
    """The single-VM machine of one Figure 5 configuration."""
    config = settings.config()
    if configuration == "no-dmr-2x":
        num_vcpus, policy = config.num_cores, "no-dmr"
    elif configuration == "no-dmr":
        num_vcpus, policy = config.num_cores // 2, "no-dmr"
    elif configuration == "reunion":
        num_vcpus, policy = config.num_cores // 2, "dmr-base"
    else:
        raise ExperimentError(f"unknown Figure 5 configuration {configuration!r}")
    spec = VmSpec(
        name="baseline",
        workload=workload,
        num_vcpus=num_vcpus,
        reliability=ReliabilityMode.RELIABLE,
        phase_scale=settings.phase_scale,
        footprint_scale=settings.footprint_scale,
    )
    return MixedModeMachine(config=config, vm_specs=[spec], policy=policy, seed=seed)


def consolidated_server_specs(
    settings: ExperimentSettings,
    workload: str,
    config: SystemConfig,
    perf_vcpus: int,
    perf_mode: ReliabilityMode,
) -> List[VmSpec]:
    """The reliable + performance guest pair of the consolidated server.

    Shared by the Figure 6 configurations and the consolidation-churn
    machine, so the churn scenario always extends exactly the baseline
    server it is compared against.
    """
    return [
        VmSpec(
            name="reliable",
            workload=workload,
            num_vcpus=min(settings.reliable_vcpus, config.num_cores // 2),
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
        ),
        VmSpec(
            name="performance",
            workload=workload,
            num_vcpus=perf_vcpus,
            reliability=perf_mode,
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
        ),
    ]


def figure6_machine(
    settings: ExperimentSettings,
    workload: str,
    configuration: str,
    seed: int,
    config: Optional[SystemConfig] = None,
) -> MixedModeMachine:
    """The two-VM consolidated server of one Figure 6 configuration."""
    config = config if config is not None else settings.config()
    if configuration == "dmr-base":
        policy, perf_vcpus, perf_mode = "dmr-base", config.num_cores // 2, ReliabilityMode.RELIABLE
    elif configuration == "mmm-ipc":
        policy, perf_vcpus, perf_mode = "mmm-ipc", config.num_cores // 2, ReliabilityMode.PERFORMANCE
    elif configuration == "mmm-tp":
        policy, perf_vcpus, perf_mode = "mmm-tp", config.num_cores, ReliabilityMode.PERFORMANCE
    else:
        raise ExperimentError(f"unknown Figure 6 configuration {configuration!r}")
    specs = consolidated_server_specs(settings, workload, config, perf_vcpus, perf_mode)
    return MixedModeMachine(config=config, vm_specs=specs, policy=policy, seed=seed)


def _ablation_machine(
    settings: ExperimentSettings, workload: str, variant: str, seed: int
) -> MixedModeMachine:
    try:
        window, consistency = ABLATION_VARIANTS[variant]
    except KeyError:
        raise ExperimentError(f"unknown ablation variant {variant!r}") from None
    config = settings.config().with_window_entries(window).with_consistency(consistency)
    spec = VmSpec(
        name="baseline",
        workload=workload,
        num_vcpus=config.num_cores // 2,
        reliability=ReliabilityMode.RELIABLE,
        phase_scale=settings.phase_scale,
        footprint_scale=settings.footprint_scale,
    )
    return MixedModeMachine(config=config, vm_specs=[spec], policy="dmr-base", seed=seed)


def churn_machine(
    settings: ExperimentSettings,
    workload: str,
    extra_vms: int,
    seed: int,
) -> MixedModeMachine:
    """The consolidated server plus ``extra_vms`` deferred performance VMs.

    The base machine is the Figure 6 ``mmm-tp`` consolidated server; the
    extra guests (named ``burst0``, ``burst1``, ...) are built deferred
    (``present_at_start=False``) so the job's timeline can admit and drain
    them mid-run with ``VmArrived``/``VmDeparted`` events.
    """
    config = settings.config()
    specs = consolidated_server_specs(
        settings, workload, config, config.num_cores, ReliabilityMode.PERFORMANCE
    )
    for index in range(extra_vms):
        specs.append(
            VmSpec(
                name=f"burst{index}",
                workload=workload,
                num_vcpus=max(1, config.num_cores // 4),
                reliability=ReliabilityMode.PERFORMANCE,
                phase_scale=settings.phase_scale,
                footprint_scale=settings.footprint_scale,
                present_at_start=False,
            )
        )
    return MixedModeMachine(config=config, vm_specs=specs, policy="mmm-tp", seed=seed)


def _require_settings(job: ExperimentJob) -> ExperimentSettings:
    if job.settings is None:
        raise ExperimentError(f"job {job.label} needs ExperimentSettings")
    return job.settings


def job_timeline(job: ExperimentJob) -> Optional[Timeline]:
    """The job's event timeline, deserialized from its ``timeline`` param.

    Any Simulator-driven cell may carry a timeline; it is part of the job's
    canonical description, so the cache key -- and therefore the cached
    result -- changes with the event schedule.
    """
    serialized = job.param("timeline")
    if not serialized:
        return None
    return Timeline.from_json(str(serialized))


def simulate_cell(job: ExperimentJob) -> SimulationResult:
    """Build and run the machine of one Simulator-driven cell.

    Used by the cell executors below and directly by the determinism tests:
    the returned :class:`SimulationResult` (not just the extracted metrics)
    must be identical whether the cell runs in-process or in a pool worker.
    """
    settings = _require_settings(job)
    if job.kind == "figure5":
        machine = figure5_machine(settings, job.workload, job.variant, job.seed)
    elif job.kind == "figure6":
        machine = figure6_machine(settings, job.workload, job.variant, job.seed)
    elif job.kind == "pab":
        machine = figure6_machine(
            settings,
            job.workload,
            "mmm-tp",
            job.seed,
            config=settings.config().with_pab_lookup(PabLookupMode(job.variant)),
        )
    elif job.kind == "ablation":
        machine = _ablation_machine(settings, job.workload, job.variant, job.seed)
    elif job.kind == "degradation":
        # The Reunion single-VM machine of Figure 5; the cores fail on the
        # schedule carried by the job's timeline.
        machine = figure5_machine(settings, job.workload, "reunion", job.seed)
    elif job.kind == "churn":
        machine = churn_machine(
            settings, job.workload, int(job.param("extra_vms", 0)), job.seed
        )
    else:
        raise ExperimentError(f"{job.kind!r} cells are not Simulator-driven")
    if settings.fidelity == "fast":
        machine.timing_model = FastTimingModel(machine.timing_model)
    return Simulator(machine, settings.options(), timeline=job_timeline(job)).run()


# ===================================================================== #
# Cell executors (one per experiment kind)
# ===================================================================== #


@register_job_kind("figure5")
def _execute_figure5(job: ExperimentJob) -> Dict[str, float]:
    run = simulate_cell(job)
    vm = run.vm("baseline")
    return {
        "user_ipc": vm.average_user_ipc(run.total_cycles),
        "throughput": run.overall_throughput(),
    }


@register_job_kind("figure6")
def _execute_figure6(job: ExperimentJob) -> Dict[str, float]:
    run = simulate_cell(job)
    reliable = run.vm("reliable")
    performance = run.vm("performance")
    return {
        "reliable_ipc": reliable.average_user_ipc(run.total_cycles),
        "performance_ipc": performance.average_user_ipc(run.total_cycles),
        "reliable_throughput": reliable.throughput(run.total_cycles),
        "performance_throughput": performance.throughput(run.total_cycles),
        "overall_throughput": run.overall_throughput(),
    }


@register_job_kind("pab")
def _execute_pab(job: ExperimentJob) -> Dict[str, float]:
    run = simulate_cell(job)
    return {
        "performance_ipc": run.vm("performance").average_user_ipc(run.total_cycles),
        "reliable_ipc": run.vm("reliable").average_user_ipc(run.total_cycles),
    }


@register_job_kind("ablation")
def _execute_ablation(job: ExperimentJob) -> Dict[str, float]:
    run = simulate_cell(job)
    return {"user_ipc": run.vm("baseline").average_user_ipc(run.total_cycles)}


@register_job_kind("degradation")
def _execute_degradation(job: ExperimentJob) -> Dict[str, float]:
    """One graceful-degradation cell: cores fail mid-run on a schedule."""
    settings = _require_settings(job)
    run = simulate_cell(job)
    vm = run.vm("baseline")
    failed = int(job.param("failed_cores", 0))
    return {
        "throughput": run.overall_throughput(),
        "user_ipc": vm.average_user_ipc(run.total_cycles),
        "surviving_cores": settings.config().num_cores - failed,
        "paused_vcpu_quanta": run.paused_vcpu_quanta,
        "events_applied": run.timeline_events_applied,
    }


@register_job_kind("churn")
def _execute_churn(job: ExperimentJob) -> Dict[str, float]:
    """One consolidation-churn cell: guest VMs arrive and depart mid-run."""
    run = simulate_cell(job)
    used = float(run.quantum_stats.get("core_cycles_used", 0.0))
    capacity = float(run.quantum_stats.get("core_cycles_capacity", 0.0))
    return {
        "overall_throughput": run.overall_throughput(),
        "reliable_ipc": run.vm("reliable").average_user_ipc(run.total_cycles),
        "utilization": used / capacity if capacity else 0.0,
        "transitions": run.transitions,
        "transition_cycles": run.transition_cycles,
        "events_applied": run.timeline_events_applied,
    }


@register_job_kind("table1")
def _execute_table1(job: ExperimentJob) -> Dict[str, float]:
    """Measure Enter/Leave-DMR costs for one workload (Table 1)."""
    config = (job.config or paper_system_config()).validate()
    transitions_to_measure = int(job.param("transitions_to_measure", 8))
    warmup_cycles = int(job.param("warmup_cycles", 8_000))
    specs = [
        VmSpec(
            name="reliable",
            workload=job.workload,
            num_vcpus=config.num_cores // 2,
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=0.02,
        ),
        VmSpec(
            name="performance",
            workload=job.workload,
            num_vcpus=config.num_cores,
            reliability=ReliabilityMode.PERFORMANCE,
            phase_scale=0.02,
        ),
    ]
    machine = MixedModeMachine(
        config=config, vm_specs=specs, policy="mmm-tp", seed=job.seed
    )
    reliable_vcpu = machine.vms[0].vcpus[0]
    perf_vcpu_a = machine.vms[1].vcpus[0]
    perf_vcpu_b = machine.vms[1].vcpus[1]

    # Warm the caches with a little DMR and performance execution so that
    # transition costs reflect realistic cache contents.
    machine.hierarchy.begin_window(warmup_cycles)
    # In steady state every VCPU's scratchpad save area has been written
    # many times and lives in the (large) cache hierarchy; touch the slots
    # once so the measured transitions do not pay compulsory DRAM misses.
    for vcpu in (reliable_vcpu, perf_vcpu_a, perf_vcpu_b):
        for copy in ("primary", "redundant"):
            for address in machine.scratchpad.line_addresses(vcpu.vcpu_id, copy):
                machine.hierarchy.load(0, address)
                machine.hierarchy.load(1, address, coherent=False)
    machine.timing_model.run_quantum(
        workload=reliable_vcpu.workload,
        assignment=CoreAssignment(
            mode=ExecutionMode.DMR,
            primary_core=0,
            secondary_core=1,
            reunion_pair=machine.pair_factory(0, 1),
        ),
        cycle_budget=warmup_cycles,
        vcpu_id=reliable_vcpu.vcpu_id,
    )
    machine.timing_model.run_quantum(
        workload=perf_vcpu_a.workload,
        assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=2),
        cycle_budget=warmup_cycles,
        vcpu_id=perf_vcpu_a.vcpu_id,
    )

    enter_costs: List[float] = []
    leave_costs: List[float] = []
    for index in range(transitions_to_measure):
        leave = machine.transition_engine.leave_dmr(
            vocal_core=0,
            mute_core=1,
            vcpu=reliable_vcpu,
            incoming_vocal_vcpu=perf_vcpu_a,
            incoming_mute_vcpu=perf_vcpu_b,
            flavor=TransitionFlavor.MMM_TP,
            current_cycle=index,
        )
        leave_costs.append(leave.total_cycles)
        # Run a little in performance mode so the next Enter has work to
        # context switch out and the mute core has incoherent lines again.
        machine.timing_model.run_quantum(
            workload=perf_vcpu_a.workload,
            assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=0),
            cycle_budget=2_000,
            vcpu_id=perf_vcpu_a.vcpu_id,
        )
        machine.timing_model.run_quantum(
            workload=perf_vcpu_b.workload,
            assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=1),
            cycle_budget=2_000,
            vcpu_id=perf_vcpu_b.vcpu_id,
        )
        enter = machine.transition_engine.enter_dmr(
            vocal_core=0,
            mute_core=1,
            vcpu=reliable_vcpu,
            outgoing_vocal_vcpu=perf_vcpu_a,
            outgoing_mute_vcpu=perf_vcpu_b,
            flavor=TransitionFlavor.MMM_TP,
            current_cycle=index,
        )
        enter_costs.append(enter.total_cycles)
        # Run a little in DMR mode so the mute cache is populated again.
        machine.timing_model.run_quantum(
            workload=reliable_vcpu.workload,
            assignment=CoreAssignment(
                mode=ExecutionMode.DMR,
                primary_core=0,
                secondary_core=1,
                reunion_pair=machine.pair_factory(0, 1),
            ),
            cycle_budget=2_000,
            vcpu_id=reliable_vcpu.vcpu_id,
        )
    return {
        "enter_dmr_cycles": mean(enter_costs),
        "leave_dmr_cycles": mean(leave_costs),
    }


@register_job_kind("table2")
def _execute_table2(job: ExperimentJob) -> Dict[str, float]:
    """Time user and OS phases of one workload (Table 2)."""
    config = (job.config or evaluation_system_config()).validate()
    phases_to_measure = int(job.param("phases_to_measure", 3))
    measurement_phase_scale = float(job.param("measurement_phase_scale", 0.1))
    spec = VmSpec(
        name="baseline",
        workload=job.workload,
        num_vcpus=1,
        reliability=ReliabilityMode.RELIABLE,
        phase_scale=measurement_phase_scale,
        footprint_scale=1.0 / 8,
    )
    machine = MixedModeMachine(
        config=config, vm_specs=[spec], policy="no-dmr", seed=job.seed
    )
    vcpu = machine.vms[0].vcpus[0]
    assignment = CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=0)
    machine.hierarchy.begin_window(1_000_000)

    user_cycles: List[float] = []
    os_cycles: List[float] = []
    # Discard the first partial phase, then time alternate phases.
    machine.timing_model.run_quantum(
        workload=vcpu.workload,
        assignment=assignment,
        cycle_budget=10_000_000,
        vcpu_id=vcpu.vcpu_id,
        stop_on_os_entry=True,
    )
    for _ in range(phases_to_measure):
        os_run = machine.timing_model.run_quantum(
            workload=vcpu.workload,
            assignment=assignment,
            cycle_budget=50_000_000,
            vcpu_id=vcpu.vcpu_id,
            stop_on_os_exit=True,
        )
        os_cycles.append(os_run.cycles)
        user_run = machine.timing_model.run_quantum(
            workload=vcpu.workload,
            assignment=assignment,
            cycle_budget=50_000_000,
            vcpu_id=vcpu.vcpu_id,
            stop_on_os_entry=True,
        )
        user_cycles.append(user_run.cycles)
    scale = 1.0 / measurement_phase_scale
    return {
        "user_cycles": mean(user_cycles) * scale,
        "os_cycles": mean(os_cycles) * scale,
    }
