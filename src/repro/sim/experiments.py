"""Per-figure / per-table experiment entry points and legacy result views.

Every table and figure of the paper's evaluation (Section 5) has one function
here that runs the corresponding :class:`~repro.sim.specs.ExperimentSpec`
and returns a structured result object with the same rows/series the paper
reports:

======================  =====================================================
Paper artefact          Entry point
======================  =====================================================
Figure 5(a)/(b)         :func:`run_dmr_overhead_experiment`
Figure 6(a)/(b)         :func:`run_mixed_mode_experiment`
Section 5.2 (PAB)       :func:`run_pab_latency_study`
Table 1                 :func:`run_switch_overhead_experiment`
Table 2                 :func:`run_switch_frequency_experiment`
Section 5.3 bottom line :func:`run_single_os_overhead_study`
Window/TSO ablation     :func:`run_window_ablation`
Sections 2.1/3.4 faults :func:`run_fault_coverage_experiment`
Fault-space sweep       :func:`run_fault_rate_sweep`
Everything at once      :func:`run_all_experiments`
======================  =====================================================

All experiments share :class:`ExperimentSettings` (see
:mod:`repro.sim.settings`), which holds the scaled-down run lengths and the
capacity/footprint scale factor so that the whole evaluation completes on a
laptop while preserving the relative behaviour the paper reports.

Since the frame redesign, the single source of aggregation is the
schema-driven :class:`~repro.sim.frames.ResultFrame`: each spec declares a
:class:`~repro.sim.frames.MetricSchema` and running it yields a frame.  The
dataclasses in this module are *views* over those frames -- they keep the
familiar per-row attribute access and the paper-shaped ``format_*`` tables,
but no longer aggregate anything themselves.  This module keeps the domain
pieces the specs are built from (the job enumerators and timeline builders)
plus the view constructors; :func:`run_all_experiments` iterates the
``EXPERIMENTS`` registry, enumerates *every* spec's cells into one batch,
and returns one frame per spec.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import normalize_to, percent_change
from repro.analysis.tables import TextTable
from repro.common.stats import ConfidenceInterval, confidence_interval_95, mean
from repro.config.presets import evaluation_system_config, paper_system_config
from repro.config.system import PabLookupMode, SystemConfig
from repro.errors import ExperimentError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    SWEEP_CONFIGURATIONS,
    CampaignConfiguration,
)
from repro.faults.cells import assemble_campaign_reports, fault_campaign_jobs
from repro.faults.outcomes import CoverageReport
from repro.sim.frames import ResultFrame, frames_document
from repro.sim.jobs import (
    ABLATION_VARIANTS,
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    ExperimentJob,
)
from repro.sim.runner import ExperimentRunner, Metrics, default_runner
from repro.sim.settings import PAPER_TIMESLICE_CYCLES, ExperimentSettings
from repro.sim.timeline import CoreFailed, Timeline, VmArrived, VmDeparted
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES

__all__ = [
    "PAPER_TIMESLICE_CYCLES",
    "ExperimentSettings",
    "FIGURE5_CONFIGS",
    "FIGURE6_CONFIGS",
    "ABLATION_VARIANTS",
    "DmrOverheadRow",
    "DmrOverheadResult",
    "MixedModeRow",
    "MixedModeResult",
    "PabLatencyRow",
    "PabLatencyResult",
    "SwitchOverheadRow",
    "SwitchOverheadResult",
    "SwitchFrequencyRow",
    "SwitchFrequencyResult",
    "SingleOsOverheadRow",
    "SingleOsOverheadResult",
    "WindowAblationRow",
    "WindowAblationResult",
    "DegradationRow",
    "DegradationResult",
    "ConsolidationChurnRow",
    "ConsolidationChurnResult",
    "FaultCoverageRow",
    "FaultCoverageResult",
    "FaultRateSweepResult",
    "FAULT_DEFAULT_SEEDS",
    "FAULT_COVERAGE_TITLE",
    "AllExperimentsResult",
    "figure5_jobs",
    "figure6_jobs",
    "pab_jobs",
    "switch_overhead_jobs",
    "switch_frequency_jobs",
    "window_ablation_jobs",
    "degradation_timeline",
    "degradation_jobs",
    "churn_timeline",
    "churn_jobs",
    "fault_campaign_jobs",
    "assemble_fault_coverage",
    "combine_single_os",
    "collect_frames",
    "run_dmr_overhead_experiment",
    "run_mixed_mode_experiment",
    "run_pab_latency_study",
    "run_switch_overhead_experiment",
    "run_switch_frequency_experiment",
    "run_single_os_overhead_study",
    "run_window_ablation",
    "run_degradation_experiment",
    "run_consolidation_churn_experiment",
    "run_fault_coverage_experiment",
    "run_fault_rate_sweep",
    "run_all_experiments",
]

JobResults = Mapping[ExperimentJob, Metrics]


# ===================================================================== #
# Figure 5: overhead of dual redundancy
# ===================================================================== #


@dataclass
class DmrOverheadRow:
    """One workload's Figure 5 data."""

    workload: str
    per_thread_ipc: Dict[str, ConfidenceInterval]
    throughput: Dict[str, ConfidenceInterval]

    def normalized_ipc(self) -> Dict[str, float]:
        """Per-thread IPC normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.per_thread_ipc.items()}, "no-dmr-2x"
        )

    def normalized_throughput(self) -> Dict[str, float]:
        """Throughput normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.throughput.items()}, "no-dmr-2x"
        )


@dataclass
class DmrOverheadResult:
    """Figure 5(a) and 5(b) of the paper (a view over the ``figure5`` frame)."""

    settings: ExperimentSettings
    rows: List[DmrOverheadRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, frame: ResultFrame
    ) -> "DmrOverheadResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls(settings=settings)
        configurations = frame.axis_values("configuration")
        for workload in frame.axis_values("workload"):
            result.rows.append(
                DmrOverheadRow(
                    workload=str(workload),
                    per_thread_ipc={
                        str(c): frame.value("user_ipc", workload=workload, configuration=c)
                        for c in configurations
                    },
                    throughput={
                        str(c): frame.value("throughput", workload=workload, configuration=c)
                        for c in configurations
                    },
                )
            )
        return result

    def row(self, workload: str) -> DmrOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 5 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 5(a): normalised per-thread user IPC."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(a): per-thread user IPC (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_ipc()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 5(b): normalised overall throughput."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(b): overall throughput (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_throughput()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()


def figure5_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """Every (workload, configuration, seed) cell of Figure 5."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure5", workload=workload, variant=configuration, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for configuration in FIGURE5_CONFIGS
        for seed in settings.seeds
    ]


def run_dmr_overhead_experiment(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> DmrOverheadResult:
    """Reproduce Figure 5: per-thread IPC and throughput of DMR vs. no DMR.

    Thin view over the registered ``figure5`` spec's frame.
    """
    from repro.sim.specs import experiment

    run = experiment("figure5").execute(settings, runner=runner)
    return DmrOverheadResult.from_frame(run.request.settings, run.frame())


# ===================================================================== #
# Figure 6: mixed-mode performance
# ===================================================================== #


@dataclass
class MixedModeRow:
    """One workload's Figure 6 data."""

    workload: str
    reliable_ipc: Dict[str, ConfidenceInterval]
    performance_ipc: Dict[str, ConfidenceInterval]
    reliable_throughput: Dict[str, ConfidenceInterval]
    performance_throughput: Dict[str, ConfidenceInterval]
    overall_throughput: Dict[str, ConfidenceInterval]

    def normalized_performance_ipc(self) -> Dict[str, float]:
        """Performance-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_ipc.items()}, "dmr-base"
        )

    def normalized_reliable_ipc(self) -> Dict[str, float]:
        """Reliable-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.reliable_ipc.items()}, "dmr-base"
        )

    def normalized_performance_throughput(self) -> Dict[str, float]:
        """Performance-VM throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_throughput.items()},
            "dmr-base",
        )

    def normalized_overall_throughput(self) -> Dict[str, float]:
        """Machine-wide throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.overall_throughput.items()}, "dmr-base"
        )


_FIGURE6_SERIES = (
    "reliable_ipc",
    "performance_ipc",
    "reliable_throughput",
    "performance_throughput",
    "overall_throughput",
)


@dataclass
class MixedModeResult:
    """Figure 6(a) and 6(b) of the paper (a view over the ``figure6`` frame)."""

    settings: ExperimentSettings
    rows: List[MixedModeRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, frame: ResultFrame
    ) -> "MixedModeResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls(settings=settings)
        configurations = frame.axis_values("configuration")
        for workload in frame.axis_values("workload"):
            series = {
                name: {
                    str(c): frame.value(name, workload=workload, configuration=c)
                    for c in configurations
                }
                for name in _FIGURE6_SERIES
            }
            result.rows.append(MixedModeRow(workload=str(workload), **series))
        return result

    def row(self, workload: str) -> MixedModeRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 6 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 6(a): normalised per-thread IPC of each guest VM."""
        table = TextTable(
            ["workload", "vm", *FIGURE6_CONFIGS],
            title="Figure 6(a): per-thread user IPC (normalised to DMR Base)",
        )
        for row in self.rows:
            reliable = row.normalized_reliable_ipc()
            performance = row.normalized_performance_ipc()
            table.add_row(
                [row.workload, "reliable", *[reliable[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "performance", *[performance[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 6(b): normalised throughput (performance VM and overall)."""
        table = TextTable(
            ["workload", "series", *FIGURE6_CONFIGS],
            title="Figure 6(b): throughput (normalised to DMR Base)",
        )
        for row in self.rows:
            perf = row.normalized_performance_throughput()
            overall = row.normalized_overall_throughput()
            table.add_row(
                [row.workload, "performance-vm", *[perf[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "overall", *[overall[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()


def figure6_jobs(
    settings: ExperimentSettings,
    configurations: Sequence[str] = FIGURE6_CONFIGS,
) -> List[ExperimentJob]:
    """Every (workload, configuration, seed) cell of Figure 6."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure6", workload=workload, variant=configuration, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for configuration in configurations
        for seed in settings.seeds
    ]


def run_mixed_mode_experiment(
    settings: Optional[ExperimentSettings] = None,
    configurations: Sequence[str] = FIGURE6_CONFIGS,
    runner: Optional[ExperimentRunner] = None,
) -> MixedModeResult:
    """Reproduce Figure 6: mixed-mode consolidated-server performance.

    Thin view over the registered ``figure6`` spec's frame.
    """
    from repro.sim.specs import experiment

    run = experiment("figure6").execute(
        settings, runner=runner, configurations=tuple(configurations)
    )
    return MixedModeResult.from_frame(run.request.settings, run.frame())


# ===================================================================== #
# Section 5.2: effect of PAB latency
# ===================================================================== #


@dataclass
class PabLatencyRow:
    """One workload's serial-vs-parallel PAB comparison."""

    workload: str
    parallel_ipc: float
    serial_ipc: float
    reliable_parallel_ipc: float
    reliable_serial_ipc: float

    @property
    def performance_ipc_change_percent(self) -> float:
        """IPC change of the performance VM when the PAB lookup is serialised."""
        return percent_change(self.serial_ipc, self.parallel_ipc)

    @property
    def reliable_ipc_change_percent(self) -> float:
        """IPC change of the reliable VM (expected to be ~0: it never uses the PAB)."""
        return percent_change(self.reliable_serial_ipc, self.reliable_parallel_ipc)


@dataclass
class PabLatencyResult:
    """Section 5.2's serial-PAB sensitivity study (a view over the ``pab`` frame)."""

    settings: ExperimentSettings
    rows: List[PabLatencyRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, frame: ResultFrame
    ) -> "PabLatencyResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls(settings=settings)
        parallel = PabLookupMode.PARALLEL.value
        serial = PabLookupMode.SERIAL.value
        for workload in frame.axis_values("workload"):
            result.rows.append(
                PabLatencyRow(
                    workload=str(workload),
                    parallel_ipc=frame.value(
                        "performance_ipc", workload=workload, lookup=parallel
                    ),
                    serial_ipc=frame.value(
                        "performance_ipc", workload=workload, lookup=serial
                    ),
                    reliable_parallel_ipc=frame.value(
                        "reliable_ipc", workload=workload, lookup=parallel
                    ),
                    reliable_serial_ipc=frame.value(
                        "reliable_ipc", workload=workload, lookup=serial
                    ),
                )
            )
        return result

    def format_table(self) -> str:
        """Render the study as a table of IPC changes."""
        table = TextTable(
            ["workload", "parallel ipc", "serial ipc", "perf change %", "reliable change %"],
            title="Effect of a 2-cycle serial PAB lookup (MMM-TP, performance VM)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.parallel_ipc,
                    row.serial_ipc,
                    row.performance_ipc_change_percent,
                    row.reliable_ipc_change_percent,
                ]
            )
        return table.render()


def pab_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """Every (workload, lookup-mode, seed) cell of the PAB latency study."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="pab", workload=workload, variant=mode.value, seed=seed, settings=cell,
        )
        for workload in settings.workloads
        for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL)
        for seed in settings.seeds
    ]


def run_pab_latency_study(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> PabLatencyResult:
    """Reproduce the serial-vs-parallel PAB lookup comparison of Section 5.2.

    Thin view over the registered ``pab`` spec's frame.
    """
    from repro.sim.specs import experiment

    run = experiment("pab").execute(settings, runner=runner)
    return PabLatencyResult.from_frame(run.request.settings, run.frame())


# ===================================================================== #
# Table 1: mode-switching overheads
# ===================================================================== #


@dataclass
class SwitchOverheadRow:
    """One workload's Table 1 data (cycles)."""

    workload: str
    enter_dmr_cycles: float
    leave_dmr_cycles: float


@dataclass
class SwitchOverheadResult:
    """Table 1 of the paper (a view over the ``table1`` frame)."""

    rows: List[SwitchOverheadRow] = field(default_factory=list)

    @classmethod
    def from_frame(cls, frame: ResultFrame) -> "SwitchOverheadResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls()
        for row in frame.rows:
            result.rows.append(
                SwitchOverheadRow(
                    workload=str(row["workload"]),
                    enter_dmr_cycles=row["enter_dmr_cycles"],
                    leave_dmr_cycles=row["leave_dmr_cycles"],
                )
            )
        return result

    def row(self, workload: str) -> SwitchOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 1 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 1."""
        table = TextTable(
            ["workload", "Enter DMR", "Leave DMR"],
            title="Table 1: mixed-mode switching overheads (cycles, MMM-TP)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.enter_dmr_cycles:.0f}", f"{row.leave_dmr_cycles:.0f}"]
            )
        return table.render()

    def average_round_trip_cycles(self) -> float:
        """Average cost of one Enter + Leave pair across workloads."""
        if not self.rows:
            return 0.0
        return mean(row.enter_dmr_cycles + row.leave_dmr_cycles for row in self.rows)


def switch_overhead_jobs(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    transitions_to_measure: int = 8,
    warmup_cycles: int = 8_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> List[ExperimentJob]:
    """One Table 1 cell per workload."""
    resolved = (config or paper_system_config()).validate()
    params = (
        ("transitions_to_measure", int(transitions_to_measure)),
        ("warmup_cycles", int(warmup_cycles)),
    )
    return [
        ExperimentJob(
            kind="table1", workload=workload, seed=seed, config=resolved, params=params,
        )
        for workload in workloads
    ]


def run_switch_overhead_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    transitions_to_measure: int = 8,
    warmup_cycles: int = 8_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> SwitchOverheadResult:
    """Reproduce Table 1: the cycle cost of Enter-DMR and Leave-DMR.

    Unlike the timing experiments this uses the *full-size* paper
    configuration by default, because the Leave-DMR cost is dominated by the
    one-line-per-cycle flush of the 512 KB (8192-line) L2.

    Thin view over the registered ``table1`` spec's frame.
    """
    from repro.sim.specs import experiment

    settings = (
        ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
    )
    run = experiment("table1").execute(
        settings,
        runner=runner,
        explicit_workloads=True,
        transitions_to_measure=transitions_to_measure,
        warmup_cycles=warmup_cycles,
        config=config,
    )
    return SwitchOverheadResult.from_frame(run.frame())


# ===================================================================== #
# Table 2: cycles before switching modes (single-OS)
# ===================================================================== #


@dataclass
class SwitchFrequencyRow:
    """One workload's Table 2 data (cycles, extrapolated to full-size phases)."""

    workload: str
    user_cycles: float
    os_cycles: float

    @property
    def round_trip_cycles(self) -> float:
        """User plus OS cycles for one enter/exit round trip."""
        return self.user_cycles + self.os_cycles


@dataclass
class SwitchFrequencyResult:
    """Table 2 of the paper (a view over the ``table2`` frame)."""

    rows: List[SwitchFrequencyRow] = field(default_factory=list)

    @classmethod
    def from_frame(cls, frame: ResultFrame) -> "SwitchFrequencyResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls()
        for row in frame.rows:
            result.rows.append(
                SwitchFrequencyRow(
                    workload=str(row["workload"]),
                    user_cycles=row["user_cycles"],
                    os_cycles=row["os_cycles"],
                )
            )
        return result

    def row(self, workload: str) -> SwitchFrequencyRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 2 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 2."""
        table = TextTable(
            ["workload", "User Cycles", "OS Cycles"],
            title="Table 2: cycles before switching modes (single-OS, non-DMR baseline)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.user_cycles / 1000:.0f}k", f"{row.os_cycles / 1000:.0f}k"]
            )
        return table.render()


def switch_frequency_jobs(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    phases_to_measure: int = 3,
    measurement_phase_scale: float = 0.1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> List[ExperimentJob]:
    """One Table 2 cell per workload."""
    resolved = (config or evaluation_system_config()).validate()
    params = (
        ("phases_to_measure", int(phases_to_measure)),
        ("measurement_phase_scale", float(measurement_phase_scale)),
    )
    return [
        ExperimentJob(
            kind="table2", workload=workload, seed=seed, config=resolved, params=params,
        )
        for workload in workloads
    ]


def run_switch_frequency_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    phases_to_measure: int = 3,
    measurement_phase_scale: float = 0.1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> SwitchFrequencyResult:
    """Reproduce Table 2: average user and OS cycles between mode switches.

    The measurement runs a single VCPU of each workload on the non-DMR
    baseline and times each user phase (up to the OS entry) and each OS phase
    (up to the OS exit).  Phases are generated at ``measurement_phase_scale``
    of their full length and the measured cycles are scaled back up, which
    keeps the measurement cheap without changing the achieved IPC.

    Thin view over the registered ``table2`` spec's frame.
    """
    from repro.sim.specs import experiment

    settings = (
        ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
    )
    run = experiment("table2").execute(
        settings,
        runner=runner,
        explicit_workloads=True,
        phases_to_measure=phases_to_measure,
        measurement_phase_scale=measurement_phase_scale,
        config=config,
    )
    return SwitchFrequencyResult.from_frame(run.frame())


# ===================================================================== #
# Section 5.3: single-OS mode-switching overhead
# ===================================================================== #


@dataclass
class SingleOsOverheadRow:
    """Estimated single-OS mode-switching overhead for one workload."""

    workload: str
    switch_cycles: float
    round_trip_cycles: float

    @property
    def overhead_percent(self) -> float:
        """Switching cycles as a share of one user+OS round trip."""
        total = self.round_trip_cycles + self.switch_cycles
        if total == 0:
            return 0.0
        return self.switch_cycles / total * 100.0


@dataclass
class SingleOsOverheadResult:
    """The bottom-line analysis at the end of Section 5.3."""

    rows: List[SingleOsOverheadRow] = field(default_factory=list)

    @classmethod
    def from_frame(cls, frame: ResultFrame) -> "SingleOsOverheadResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls()
        for row in frame.rows:
            result.rows.append(
                SingleOsOverheadRow(
                    workload=str(row["workload"]),
                    switch_cycles=row["switch_cycles"],
                    round_trip_cycles=row["round_trip_cycles"],
                )
            )
        return result

    def format_table(self) -> str:
        """Render the overhead estimate."""
        table = TextTable(
            ["workload", "switch cycles", "user+OS cycles", "overhead %"],
            title="Single-OS mode-switching overhead (Table 1 + Table 2 combined)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    f"{row.switch_cycles:.0f}",
                    f"{row.round_trip_cycles / 1000:.0f}k",
                    row.overhead_percent,
                ]
            )
        return table.render()


def combine_single_os(
    switch_overheads: SwitchOverheadResult,
    switch_frequency: SwitchFrequencyResult,
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
) -> SingleOsOverheadResult:
    """Fold Table 1 and Table 2 rows into the single-OS overhead estimate."""
    result = SingleOsOverheadResult()
    for workload in workloads:
        overhead_row = switch_overheads.row(workload)
        frequency_row = switch_frequency.row(workload)
        result.rows.append(
            SingleOsOverheadRow(
                workload=workload,
                switch_cycles=overhead_row.enter_dmr_cycles + overhead_row.leave_dmr_cycles,
                round_trip_cycles=frequency_row.round_trip_cycles,
            )
        )
    return result


def run_single_os_overhead_study(
    switch_overheads: Optional[SwitchOverheadResult] = None,
    switch_frequency: Optional[SwitchFrequencyResult] = None,
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> SingleOsOverheadResult:
    """Combine Table 1 and Table 2 into the paper's single-OS overhead estimate.

    With neither table given, this is a thin view over the registered
    ``single-os`` spec's frame (one batch containing both tables' cells);
    existing results are combined without running anything.
    """
    if switch_overheads is None and switch_frequency is None:
        from repro.sim.specs import experiment

        settings = (
            ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
        )
        run = experiment("single-os").execute(
            settings, runner=runner, explicit_workloads=True
        )
        return SingleOsOverheadResult.from_frame(run.frame())
    switch_overheads = switch_overheads or run_switch_overhead_experiment(
        workloads, seed=seed, runner=runner
    )
    switch_frequency = switch_frequency or run_switch_frequency_experiment(
        workloads, seed=seed, runner=runner
    )
    return combine_single_os(switch_overheads, switch_frequency, workloads)


# ===================================================================== #
# Ablation: instruction window size and consistency model
# ===================================================================== #


@dataclass
class WindowAblationRow:
    """Reunion IPC under different window / consistency configurations."""

    workload: str
    ipc_by_variant: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        """IPC normalised to the paper's configuration (128-entry window, SC)."""
        return normalize_to(self.ipc_by_variant, "window128-sc")


@dataclass
class WindowAblationResult:
    """The design-space ablation behind Section 5.1's prior-work comparison."""

    settings: ExperimentSettings
    rows: List[WindowAblationRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, frame: ResultFrame
    ) -> "WindowAblationResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls(settings=settings)
        variants = frame.axis_values("variant")
        for workload in frame.axis_values("workload"):
            result.rows.append(
                WindowAblationRow(
                    workload=str(workload),
                    ipc_by_variant={
                        str(v): frame.value("user_ipc", workload=workload, variant=v)
                        for v in variants
                    },
                )
            )
        return result

    def format_table(self) -> str:
        """Render the ablation."""
        variants = list(self.rows[0].ipc_by_variant) if self.rows else []
        table = TextTable(
            ["workload", *variants],
            title="Reunion per-thread IPC vs window size / consistency (normalised)",
        )
        for row in self.rows:
            normalized = row.normalized()
            table.add_row([row.workload, *[normalized[v] for v in variants]])
        return table.render()


def window_ablation_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """One ablation cell per (workload, variant)."""
    cell = settings.cell_settings()
    seed = settings.seeds[0]
    return [
        ExperimentJob(
            kind="ablation", workload=workload, variant=variant, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for variant in ABLATION_VARIANTS
    ]


def run_window_ablation(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> WindowAblationResult:
    """Reproduce the prior-work comparison: a larger window and a TSO store
    buffer recover much of Reunion's IPC loss.

    Thin view over the registered ``ablation`` spec's frame; without
    explicit settings the spec's workload limit restricts the sweep to two
    workloads.
    """
    from repro.sim.specs import experiment

    run = experiment("ablation").execute(
        settings, runner=runner, explicit_workloads=settings is not None
    )
    return WindowAblationResult.from_frame(run.request.settings, run.frame())


# ===================================================================== #
# Dynamic scenarios: graceful degradation under accumulating core failures
# ===================================================================== #


@dataclass
class DegradationRow:
    """One workload's throughput/IPC across the failed-core sweep."""

    workload: str
    #: Keyed by the number of failed cores.
    throughput: Dict[int, ConfidenceInterval]
    user_ipc: Dict[int, ConfidenceInterval]
    paused_quanta: Dict[int, float]

    def normalized_throughput(self) -> Dict[int, float]:
        """Throughput normalised to the healthiest (fewest failures) cell."""
        baseline = self.throughput[min(self.throughput)].mean
        if baseline == 0:
            return {failed: 0.0 for failed in self.throughput}
        return {
            failed: interval.mean / baseline
            for failed, interval in self.throughput.items()
        }


@dataclass
class DegradationResult:
    """Graceful degradation: cores fail on a schedule mid-run."""

    settings: ExperimentSettings
    failures: Sequence[int]
    num_cores: int
    rows: List[DegradationRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, frame: ResultFrame
    ) -> "DegradationResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        failures = tuple(int(f) for f in frame.axis_values("failed_cores"))
        result = cls(
            settings=settings,
            failures=failures,
            num_cores=settings.config().num_cores,
        )
        for workload in frame.axis_values("workload"):
            result.rows.append(
                DegradationRow(
                    workload=str(workload),
                    throughput={
                        failed: frame.value(
                            "throughput", workload=workload, failed_cores=failed
                        )
                        for failed in failures
                    },
                    user_ipc={
                        failed: frame.value(
                            "user_ipc", workload=workload, failed_cores=failed
                        )
                        for failed in failures
                    },
                    paused_quanta={
                        failed: frame.value(
                            "paused_vcpu_quanta", workload=workload, failed_cores=failed
                        )
                        for failed in failures
                    },
                )
            )
        return result

    def row(self, workload: str) -> DegradationRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no degradation row for workload {workload!r}")

    def format_table(self) -> str:
        """Render throughput against the surviving-core count."""
        table = TextTable(
            [
                "workload",
                *[f"{self.num_cores - failed} cores" for failed in self.failures],
            ],
            title=(
                "Graceful degradation: overall throughput vs surviving cores "
                "(cores fail mid-run; Reunion DMR machine)"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    *[row.throughput[failed].mean for failed in self.failures],
                ]
            )
        return table.render()


def degradation_timeline(settings: ExperimentSettings, failed_cores: int) -> Timeline:
    """The failure schedule of one degradation cell.

    ``failed_cores`` permanent faults strike at evenly spaced cycles across
    the measurement window, retiring the highest-numbered cores first, so a
    single run sweeps from full capacity down to its final surviving-core
    count -- every event fires mid-run.
    """
    num_cores = settings.config().num_cores
    if failed_cores >= num_cores:
        raise ExperimentError(
            f"cannot fail {failed_cores} of {num_cores} cores "
            "(at least one core must survive)"
        )
    start, window = settings.warmup_cycles, settings.total_cycles
    return Timeline.of(
        *(
            CoreFailed(
                cycle=start + (index + 1) * window // (failed_cores + 1),
                core_id=num_cores - 1 - index,
            )
            for index in range(failed_cores)
        )
    )


def degradation_jobs(
    settings: ExperimentSettings, failures: Sequence[int]
) -> List[ExperimentJob]:
    """Every (workload, failed-core count, seed) degradation cell."""
    cell = settings.cell_settings()
    jobs: List[ExperimentJob] = []
    for workload in settings.workloads:
        for failed in failures:
            params: tuple = (("failed_cores", int(failed)),)
            if failed:
                timeline = degradation_timeline(settings, int(failed))
                params += (("timeline", timeline.to_json()),)
            for seed in settings.seeds:
                jobs.append(
                    ExperimentJob(
                        kind="degradation",
                        workload=workload,
                        variant=f"fail{int(failed)}",
                        seed=seed,
                        settings=cell,
                        params=params,
                    )
                )
    return jobs


def run_degradation_experiment(
    settings: Optional[ExperimentSettings] = None,
    failures: Optional[Sequence[int]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> DegradationResult:
    """Sweep graceful degradation: throughput vs surviving-core count as
    permanent faults retire cores on a schedule mid-run.

    Thin view over the registered ``degradation`` spec's frame.
    """
    from repro.sim.specs import experiment

    run = experiment("degradation").execute(
        settings,
        runner=runner,
        explicit_workloads=settings is not None,
        failures=tuple(failures) if failures is not None else None,
    )
    return DegradationResult.from_frame(run.request.settings, run.frame())


# ===================================================================== #
# Dynamic scenarios: consolidation-server VM churn
# ===================================================================== #


@dataclass
class ConsolidationChurnRow:
    """One workload's consolidation-churn data."""

    workload: str
    throughput: ConfidenceInterval
    utilization: ConfidenceInterval
    transition_cycles: ConfidenceInterval
    events_applied: float


@dataclass
class ConsolidationChurnResult:
    """Consolidation churn: guest VMs arrive and depart mid-run."""

    settings: ExperimentSettings
    extra_vms: int
    rows: List[ConsolidationChurnRow] = field(default_factory=list)

    @classmethod
    def from_frame(
        cls, settings: ExperimentSettings, extra_vms: int, frame: ResultFrame
    ) -> "ConsolidationChurnResult":
        """Re-shape the schema-assembled frame into the legacy row view."""
        result = cls(settings=settings, extra_vms=int(extra_vms))
        for workload in frame.axis_values("workload"):
            result.rows.append(
                ConsolidationChurnRow(
                    workload=str(workload),
                    throughput=frame.value("overall_throughput", workload=workload),
                    utilization=frame.value("utilization", workload=workload),
                    transition_cycles=frame.value("transition_cycles", workload=workload),
                    events_applied=frame.value("events_applied", workload=workload),
                )
            )
        return result

    def row(self, workload: str) -> ConsolidationChurnRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no churn row for workload {workload!r}")

    def format_table(self) -> str:
        """Render utilisation and transition overhead under churn."""
        table = TextTable(
            [
                "workload",
                "throughput",
                "core utilization",
                "transition cycles",
                "events",
            ],
            title=(
                f"Consolidation churn: {self.extra_vms} burst VM(s) "
                "arriving/departing mid-run (MMM-TP)"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.throughput.mean,
                    row.utilization.mean,
                    f"{row.transition_cycles.mean:.0f}",
                    f"{row.events_applied:.0f}",
                ]
            )
        return table.render()


def churn_timeline(settings: ExperimentSettings, extra_vms: int) -> Timeline:
    """The arrival/departure schedule of one consolidation-churn cell.

    Burst VM ``i`` arrives at the ``(i+1)``-th and departs at the
    ``(i+3)``-th of ``extra_vms + 3`` evenly spaced points across the
    measurement window: each burst stays for two intervals, so consecutive
    bursts genuinely overlap by one interval and the machine passes through
    distinct consolidation levels (0, 1 and 2 concurrent bursts).
    """
    start, window = settings.warmup_cycles, settings.total_cycles
    points = extra_vms + 3
    events = []
    for index in range(extra_vms):
        events.append(
            VmArrived(
                cycle=start + (index + 1) * window // points,
                vm_name=f"burst{index}",
            )
        )
        events.append(
            VmDeparted(
                cycle=start + (index + 3) * window // points,
                vm_name=f"burst{index}",
            )
        )
    return Timeline.of(*events)


def churn_jobs(settings: ExperimentSettings, extra_vms: int) -> List[ExperimentJob]:
    """Every (workload, seed) consolidation-churn cell."""
    cell = settings.cell_settings()
    timeline = churn_timeline(settings, extra_vms)
    params = (
        ("extra_vms", int(extra_vms)),
        ("timeline", timeline.to_json()),
    )
    return [
        ExperimentJob(
            kind="churn",
            workload=workload,
            variant=f"vms{int(extra_vms)}",
            seed=seed,
            settings=cell,
            params=params,
        )
        for workload in settings.workloads
        for seed in settings.seeds
    ]


def run_consolidation_churn_experiment(
    settings: Optional[ExperimentSettings] = None,
    extra_vms: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ConsolidationChurnResult:
    """Sweep consolidation churn: utilisation and transition overhead while
    guest VMs arrive at and depart from the consolidated server mid-run.

    Thin view over the registered ``consolidation-churn`` spec's frame.
    """
    from repro.sim.specs import experiment

    run = experiment("consolidation-churn").execute(
        settings,
        runner=runner,
        explicit_workloads=settings is not None,
        extra_vms=int(extra_vms) if extra_vms is not None else None,
    )
    resolved_extra = int(
        run.request.option("extra_vms", run.request.settings.churn_extra_vms)
    )
    return ConsolidationChurnResult.from_frame(
        run.request.settings, resolved_extra, run.frame()
    )


# ===================================================================== #
# Sections 2.1 / 3.4: fault-injection coverage (cell-shaped campaign)
# ===================================================================== #

#: Seeds the fault-campaign entry points sweep by default.  Campaign trials
#: are cheap, cached and embarrassingly parallel, so a ten-seed sweep (for
#: tight confidence intervals) is the default rather than the exception --
#: matching the default :attr:`ExperimentSettings.seeds` sweep.
FAULT_DEFAULT_SEEDS = tuple(range(10))

#: Title shared by every rendering of the coverage comparison (the frame
#: view of the ``faults`` spec and
#: :func:`repro.sim.reporting.format_coverage_reports`).
FAULT_COVERAGE_TITLE = (
    "Fault-injection coverage "
    "(fraction of faults from which reliable state was protected)"
)


@dataclass
class FaultCoverageRow:
    """One campaign configuration's coverage, aggregated over the seed sweep."""

    configuration: str
    #: Every trial of every seed, merged in enumeration order.
    report: CoverageReport
    #: Coverage fraction achieved by each seed's share of the campaign.
    coverage_by_seed: Dict[int, float]

    @property
    def coverage_interval(self) -> ConfidenceInterval:
        """95% confidence interval of the coverage across seeds."""
        return confidence_interval_95(self.coverage_by_seed.values())

    @property
    def coverage(self) -> float:
        """Fraction of faults from which reliable state was protected."""
        return self.report.coverage

    @property
    def silent_corruption_rate(self) -> float:
        """Fraction of faults that silently corrupted reliable state."""
        return self.report.silent_corruption_rate


@dataclass
class FaultCoverageResult:
    """The paper's protection comparison (Sections 2.1 and 3.4).

    Unlike the pure frame views above, this result keeps the full per-trial
    records (the merged :class:`CoverageReport` per configuration), which
    the campaign analyses and tests need; the registered ``faults`` spec's
    frame carries only the aggregate coverage columns.
    """

    trials_per_site: int
    seeds: Sequence[int]
    fault_rate: float = 1.0
    rows: List[FaultCoverageRow] = field(default_factory=list)

    def row(self, configuration: str) -> FaultCoverageRow:
        """Row for one campaign configuration."""
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise ExperimentError(f"no fault-coverage row for configuration {configuration!r}")

    def reports(self) -> List[CoverageReport]:
        """The merged per-configuration coverage reports."""
        return [row.report for row in self.rows]

    def format_table(self) -> str:
        """Render the coverage comparison."""
        table = TextTable(
            ["configuration", "trials", "coverage", "95% ci", "silent corruption rate"],
            title=FAULT_COVERAGE_TITLE,
        )
        for row in self.rows:
            interval = row.coverage_interval
            table.add_row(
                [
                    row.configuration,
                    row.report.total,
                    row.coverage,
                    f"±{interval.half_width:.3f}",
                    row.silent_corruption_rate,
                ]
            )
        return table.render()


def assemble_fault_coverage(
    jobs: Sequence[ExperimentJob],
    results: JobResults,
    trials_per_site: int,
    seeds: Sequence[int],
    fault_rate: float,
) -> FaultCoverageResult:
    """Fold raw campaign cells into the record-keeping legacy result."""
    merged, per_seed = assemble_campaign_reports(jobs, results)
    result = FaultCoverageResult(
        trials_per_site=trials_per_site, seeds=tuple(seeds), fault_rate=fault_rate
    )
    for configuration, report in merged.items():
        result.rows.append(
            FaultCoverageRow(
                configuration=configuration,
                report=report,
                coverage_by_seed={
                    seed: per_seed[(configuration, seed)].coverage for seed in seeds
                },
            )
        )
    return result


def run_fault_coverage_experiment(
    trials_per_site: int = 50,
    configurations: Sequence[CampaignConfiguration] = DEFAULT_CONFIGURATIONS,
    seeds: Sequence[int] = FAULT_DEFAULT_SEEDS,
    fault_rate: float = 1.0,
    config: Optional[SystemConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FaultCoverageResult:
    """Reproduce the protection comparison of Sections 2.1 and 3.4.

    The campaign runs through the experiment engine: every (configuration,
    fault-site, seed, trials-chunk) cell is an independent job, so a
    multi-worker runner fans the trials out and a warm cache re-renders the
    comparison without injecting a single fault.

    Thin wrapper over the registered ``faults`` spec; keeps the full trial
    records (the spec's own frame carries the aggregate columns only).
    """
    from repro.sim.specs import experiment

    settings = ExperimentSettings().with_seeds(tuple(dict.fromkeys(seeds)))
    run = experiment("faults").execute(
        settings,
        runner=runner,
        trials=trials_per_site,
        configurations=tuple(configurations),
        fault_rate=fault_rate,
        config=config,
    )
    return assemble_fault_coverage(
        run.jobs, run.results, trials_per_site, run.request.settings.seeds, fault_rate
    )


@dataclass
class FaultRateSweepResult:
    """Coverage as a function of the fault-rate scale (the fault-space sweep)."""

    trials_per_site: int
    seeds: Sequence[int]
    fault_rates: Sequence[float]
    #: One full coverage result per swept fault rate.
    by_rate: Dict[float, FaultCoverageResult] = field(default_factory=dict)

    def format_table(self) -> str:
        """Render silent-corruption rates across the swept fault space."""
        table = TextTable(
            ["configuration", *[f"rate {rate:g}" for rate in self.fault_rates]],
            title=(
                "Fault-space sweep: silent corruption rate vs fault-rate scale "
                f"({self.trials_per_site} trials/site, {len(tuple(self.seeds))} seeds)"
            ),
        )
        configurations = [row.configuration for row in self.by_rate[self.fault_rates[0]].rows]
        for configuration in configurations:
            table.add_row(
                [
                    configuration,
                    *[
                        self.by_rate[rate].row(configuration).silent_corruption_rate
                        for rate in self.fault_rates
                    ],
                ]
            )
        return table.render()


def run_fault_rate_sweep(
    fault_rates: Sequence[float] = (0.25, 0.5, 1.0),
    trials_per_site: int = 50,
    configurations: Sequence[CampaignConfiguration] = SWEEP_CONFIGURATIONS,
    seeds: Sequence[int] = FAULT_DEFAULT_SEEDS,
    config: Optional[SystemConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FaultRateSweepResult:
    """Sweep the fault space: coverage per configuration across fault rates.

    All (rate, configuration, site, seed, chunk) cells are enumerated into
    *one* batch, so a parallel runner overlaps the whole sweep and cached
    cells are shared with any other campaign run at the same rate.

    Thin wrapper over the registered ``faults`` spec (its ``sweep_rates``
    option is what turns the campaign into the sweep).
    """
    if not fault_rates:
        raise ExperimentError("a fault-rate sweep needs at least one rate")
    from repro.sim.specs import experiment

    settings = ExperimentSettings().with_seeds(tuple(dict.fromkeys(seeds)))
    run = experiment("faults").execute(
        settings,
        runner=runner,
        trials=trials_per_site,
        configurations=tuple(configurations),
        sweep_rates=tuple(fault_rates),
        config=config,
    )
    resolved_seeds = run.request.settings.seeds
    by_rate: Dict[float, FaultCoverageResult] = {}
    for rate in fault_rates:
        rate_jobs = [job for job in run.jobs if job.param("fault_rate") == float(rate)]
        by_rate[rate] = assemble_fault_coverage(
            rate_jobs, run.results, trials_per_site, resolved_seeds, float(rate)
        )
    return FaultRateSweepResult(
        trials_per_site=trials_per_site,
        seeds=resolved_seeds,
        fault_rates=tuple(fault_rates),
        by_rate=by_rate,
    )


# ===================================================================== #
# Everything at once
# ===================================================================== #


@dataclass
class AllExperimentsResult:
    """Every experiment's result frame, produced from one job batch."""

    settings: ExperimentSettings
    #: One schema-assembled frame per registered spec, in registry
    #: (= presentation) order.
    frames: Dict[str, ResultFrame] = field(default_factory=dict)
    #: Results of any schema-less (user-registered) specs, keyed by spec
    #: name -- a custom experiment registered in ``EXPERIMENTS`` rides the
    #: same batch and lands here.
    extras: Dict[str, object] = field(default_factory=dict)
    #: Raw per-cell metrics keyed by cache key -- the canonical, fully
    #: serializable record of the batch (used by the determinism tests to
    #: compare serial and parallel runs byte for byte).
    job_metrics: Dict[str, Metrics] = field(default_factory=dict)

    def frame(self, name: str) -> ResultFrame:
        """One spec's frame (raising when it was skipped)."""
        try:
            return self.frames[name]
        except KeyError:
            raise ExperimentError(
                f"experiment {name!r} was not part of this run"
            ) from None

    # Legacy dataclass views over the frames, for callers that prefer the
    # familiar per-row attribute access.  ``None`` when the experiment was
    # skipped in this run.

    @property
    def figure5(self) -> Optional[DmrOverheadResult]:
        frame = self.frames.get("figure5")
        return DmrOverheadResult.from_frame(self.settings, frame) if frame else None

    @property
    def figure6(self) -> Optional[MixedModeResult]:
        frame = self.frames.get("figure6")
        return MixedModeResult.from_frame(self.settings, frame) if frame else None

    @property
    def pab(self) -> Optional[PabLatencyResult]:
        frame = self.frames.get("pab")
        return PabLatencyResult.from_frame(self.settings, frame) if frame else None

    @property
    def table1(self) -> Optional[SwitchOverheadResult]:
        frame = self.frames.get("table1")
        return SwitchOverheadResult.from_frame(frame) if frame else None

    @property
    def table2(self) -> Optional[SwitchFrequencyResult]:
        frame = self.frames.get("table2")
        return SwitchFrequencyResult.from_frame(frame) if frame else None

    @property
    def single_os(self) -> Optional[SingleOsOverheadResult]:
        frame = self.frames.get("single-os")
        return SingleOsOverheadResult.from_frame(frame) if frame else None

    @property
    def ablation(self) -> Optional[WindowAblationResult]:
        frame = self.frames.get("ablation")
        return WindowAblationResult.from_frame(self.settings, frame) if frame else None

    @property
    def faults(self) -> Optional[ResultFrame]:
        """The fault campaign's aggregate frame (coverage per configuration)."""
        return self.frames.get("faults")

    def sections(self) -> List[str]:
        """Every reproduced table, in the paper's presentation order."""
        from repro.sim.specs import EXPERIMENTS

        parts = [
            EXPERIMENTS[name].to_table(frame) for name, frame in self.frames.items()
        ]
        parts += [
            EXPERIMENTS[name].to_table(result) for name, result in self.extras.items()
        ]
        return parts

    def render(self) -> str:
        """The full plain-text report."""
        return "\n\n".join(self.sections())

    def to_document(self) -> Dict[str, object]:
        """The canonical JSON document of this run (``run-all --json``).

        Embeds the settings so ``repro diff`` can re-run the exact same
        evaluation against the document as a baseline.
        """
        return frames_document(self.frames, settings=asdict(self.settings))


def _enumerate_spec_batch(settings: ExperimentSettings, names: Sequence[str]):
    """Resolve requests and enumerate every named spec's cells into one batch.

    The shared front half of :func:`collect_frames` and
    :func:`run_all_experiments`: request resolution and batching must stay
    identical between them, or ``repro export``/``repro diff`` would
    silently diverge from the ``run-all --json`` baselines they compare
    against.  Returns ``(requests, jobs_by_spec, batch)``.
    """
    from repro.sim.specs import experiment

    requests = {}
    jobs_by_spec: Dict[str, List[ExperimentJob]] = {}
    batch: List[ExperimentJob] = []
    for name in names:
        spec = experiment(name)
        # No per-spec options: every spec sizes itself from the settings
        # object (the faults spec, for instance, falls back to
        # ``settings.fault_trials_per_site``).
        request = spec.request(settings)
        requests[name] = request
        jobs_by_spec[name] = spec.enumerate_jobs(request)
        batch += jobs_by_spec[name]
    return requests, jobs_by_spec, batch


def collect_frames(
    settings: Optional[ExperimentSettings] = None,
    names: Optional[Sequence[str]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> Dict[str, ResultFrame]:
    """Run the named specs as one batch and return their frames.

    ``names`` defaults to every registered spec with a schema.  This is the
    engine behind ``repro export`` and ``repro diff``: cells of all the
    selected specs are enumerated into a single runner batch (overlapping
    across experiments under a parallel runner) and each spec's frame is
    assembled from the shared results.
    """
    from repro.sim.specs import EXPERIMENTS, experiment

    settings = settings or ExperimentSettings()
    runner = runner or default_runner()
    if names is None:
        names = [name for name, spec in EXPERIMENTS.items() if spec.schema is not None]
    for name in names:
        if experiment(name).schema is None:
            raise ExperimentError(
                f"experiment {name!r} declares no MetricSchema and cannot be framed"
            )

    with runner.stats.phase("enumerate"):
        requests, jobs_by_spec, batch = _enumerate_spec_batch(settings, names)
    results = runner.run_jobs(batch)
    with runner.stats.phase("assemble"):
        return {
            name: experiment(name).assemble_frame(requests[name], jobs_by_spec[name], results)
            for name in requests
        }


def run_all_experiments(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
    include_switching: bool = True,
    include_ablation: bool = True,
    include_faults: bool = True,
) -> AllExperimentsResult:
    """Run the whole evaluation -- every registered spec -- as one job batch.

    The experiment list comes from the ``EXPERIMENTS`` registry of
    :mod:`repro.sim.specs`: every spec's cells (simulation cells and
    fault-campaign cells alike, plus any user-registered spec's) are
    enumerated up front and handed to the runner in a single call, so a
    multi-worker runner overlaps cells *across* experiments (not just
    within one) and a warm cache re-run executes nothing at all.  Each
    spec's results land as one :class:`ResultFrame` (schema-less specs
    fall back to their ``assemble`` hook and land in ``extras``).
    """
    from repro.sim.specs import EXPERIMENTS

    settings = settings or ExperimentSettings()
    runner = runner or default_runner()
    included = {
        "switching": include_switching,
        "ablation": include_ablation,
        "faults": include_faults,
    }
    names = [
        name
        for name, spec in EXPERIMENTS.items()
        if spec.run_all_group is None or included.get(spec.run_all_group, True)
    ]

    with runner.stats.phase("enumerate"):
        requests, jobs_by_spec, batch = _enumerate_spec_batch(settings, names)
    results = runner.run_jobs(batch)

    frames: Dict[str, ResultFrame] = {}
    extras: Dict[str, object] = {}
    with runner.stats.phase("assemble"):
        for name, request in requests.items():
            spec = EXPERIMENTS[name]
            if spec.schema is not None:
                frames[name] = spec.assemble_frame(request, jobs_by_spec[name], results)
            else:
                extras[name] = spec.assemble(request, jobs_by_spec[name], results)

    return AllExperimentsResult(
        settings=settings,
        frames=frames,
        extras=extras,
        job_metrics={job.cache_key(): dict(results[job]) for job in batch},
    )
