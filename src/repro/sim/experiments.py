"""Per-figure / per-table experiment entry points.

Every table and figure of the paper's evaluation (Section 5) has one function
here that builds the relevant machines, runs them, and returns a structured
result object with the same rows/series the paper reports:

======================  =====================================================
Paper artefact          Entry point
======================  =====================================================
Figure 5(a)/(b)         :func:`run_dmr_overhead_experiment`
Figure 6(a)/(b)         :func:`run_mixed_mode_experiment`
Section 5.2 (PAB)       :func:`run_pab_latency_study`
Table 1                 :func:`run_switch_overhead_experiment`
Table 2                 :func:`run_switch_frequency_experiment`
Section 5.3 bottom line :func:`run_single_os_overhead_study`
Window/TSO ablation     :func:`run_window_ablation`
======================  =====================================================

All experiments share :class:`ExperimentSettings`, which holds the scaled-down
run lengths and the capacity/footprint scale factor (see
``evaluation_system_config``) so that the whole evaluation completes on a
laptop while preserving the relative behaviour the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.metrics import normalize_to, percent_change
from repro.analysis.tables import TextTable
from repro.common.stats import ConfidenceInterval, confidence_interval_95
from repro.config.presets import evaluation_system_config, paper_system_config
from repro.config.system import ConsistencyModel, PabLookupMode, SystemConfig
from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.transitions import TransitionFlavor
from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.errors import ExperimentError
from repro.sim.simulator import SimulationOptions, Simulator
from repro.virt.vcpu import ReliabilityMode
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES

#: Timeslice assumed by the paper (1 ms at 3 GHz).
PAPER_TIMESLICE_CYCLES = 3_000_000


@dataclass(frozen=True)
class ExperimentSettings:
    """Shared knobs of the reproduction experiments."""

    #: Factor by which cache capacities (and workload footprints) are scaled
    #: down relative to the paper's machine; 1 = full size.
    capacity_scale: int = 8
    #: Measured cycles per run (after warmup).
    total_cycles: int = 60_000
    #: Warmup cycles per run.
    warmup_cycles: int = 15_000
    #: Gang-scheduling timeslice used by the consolidated-server runs.
    timeslice_cycles: int = 25_000
    #: Scale applied to the workloads' user/OS phase lengths.
    phase_scale: float = 0.01
    #: Seeds to average over (the paper reports 95% confidence intervals
    #: over multiple runs).
    seeds: Tuple[int, ...] = (0,)
    #: Workloads to evaluate, in the paper's figure order.
    workloads: Tuple[str, ...] = PAPER_WORKLOAD_NAMES
    #: VCPUs exposed by the reliable guest (the paper uses 8 on 16 cores).
    reliable_vcpus: int = 8

    @property
    def footprint_scale(self) -> float:
        """Workload footprints shrink with the cache capacities."""
        return 1.0 / self.capacity_scale

    def config(self) -> SystemConfig:
        """The (scaled) machine configuration used by the experiments."""
        return evaluation_system_config(
            capacity_scale=self.capacity_scale,
            timeslice_cycles=self.timeslice_cycles,
        )

    def transition_cost_scale(self) -> float:
        """Keep the paper's ratio of transition cost to timeslice length."""
        return min(1.0, self.timeslice_cycles / PAPER_TIMESLICE_CYCLES)

    def options(self) -> SimulationOptions:
        """Simulation options shared by the timing experiments."""
        return SimulationOptions(
            total_cycles=self.total_cycles,
            warmup_cycles=self.warmup_cycles,
            transition_cost_scale=self.transition_cost_scale(),
        )

    @classmethod
    def quick(cls) -> "ExperimentSettings":
        """Very small settings for smoke tests of the experiment plumbing."""
        return cls(
            capacity_scale=16,
            total_cycles=12_000,
            warmup_cycles=4_000,
            timeslice_cycles=4_000,
            phase_scale=0.005,
            workloads=("apache", "pmake"),
            reliable_vcpus=4,
        )

    def with_workloads(self, workloads: Sequence[str]) -> "ExperimentSettings":
        """A copy restricted to the given workloads."""
        return replace(self, workloads=tuple(workloads))


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ===================================================================== #
# Figure 5: overhead of dual redundancy
# ===================================================================== #

#: Configuration labels of Figure 5, in presentation order.
FIGURE5_CONFIGS = ("no-dmr-2x", "no-dmr", "reunion")


@dataclass
class DmrOverheadRow:
    """One workload's Figure 5 data."""

    workload: str
    per_thread_ipc: Dict[str, ConfidenceInterval]
    throughput: Dict[str, ConfidenceInterval]

    def normalized_ipc(self) -> Dict[str, float]:
        """Per-thread IPC normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.per_thread_ipc.items()}, "no-dmr-2x"
        )

    def normalized_throughput(self) -> Dict[str, float]:
        """Throughput normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.throughput.items()}, "no-dmr-2x"
        )


@dataclass
class DmrOverheadResult:
    """Figure 5(a) and 5(b) of the paper."""

    settings: ExperimentSettings
    rows: List[DmrOverheadRow] = field(default_factory=list)

    def row(self, workload: str) -> DmrOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 5 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 5(a): normalised per-thread user IPC."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(a): per-thread user IPC (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_ipc()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 5(b): normalised overall throughput."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(b): overall throughput (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_throughput()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()


def _figure5_machine(
    settings: ExperimentSettings, workload: str, configuration: str, seed: int
) -> MixedModeMachine:
    config = settings.config()
    if configuration == "no-dmr-2x":
        num_vcpus, policy = config.num_cores, "no-dmr"
    elif configuration == "no-dmr":
        num_vcpus, policy = config.num_cores // 2, "no-dmr"
    elif configuration == "reunion":
        num_vcpus, policy = config.num_cores // 2, "dmr-base"
    else:
        raise ExperimentError(f"unknown Figure 5 configuration {configuration!r}")
    spec = VmSpec(
        name="baseline",
        workload=workload,
        num_vcpus=num_vcpus,
        reliability=ReliabilityMode.RELIABLE,
        phase_scale=settings.phase_scale,
        footprint_scale=settings.footprint_scale,
    )
    return MixedModeMachine(config=config, vm_specs=[spec], policy=policy, seed=seed)


def run_dmr_overhead_experiment(
    settings: Optional[ExperimentSettings] = None,
) -> DmrOverheadResult:
    """Reproduce Figure 5: per-thread IPC and throughput of DMR vs. no DMR."""
    settings = settings or ExperimentSettings()
    result = DmrOverheadResult(settings=settings)
    for workload in settings.workloads:
        ipc: Dict[str, ConfidenceInterval] = {}
        throughput: Dict[str, ConfidenceInterval] = {}
        for configuration in FIGURE5_CONFIGS:
            ipc_samples: List[float] = []
            tput_samples: List[float] = []
            for seed in settings.seeds:
                machine = _figure5_machine(settings, workload, configuration, seed)
                sim = Simulator(machine, settings.options())
                run = sim.run()
                vm = run.vm("baseline")
                ipc_samples.append(vm.average_user_ipc(run.total_cycles))
                tput_samples.append(run.overall_throughput())
            ipc[configuration] = confidence_interval_95(ipc_samples)
            throughput[configuration] = confidence_interval_95(tput_samples)
        result.rows.append(
            DmrOverheadRow(workload=workload, per_thread_ipc=ipc, throughput=throughput)
        )
    return result


# ===================================================================== #
# Figure 6: mixed-mode performance
# ===================================================================== #

#: Configuration labels of Figure 6, in presentation order.
FIGURE6_CONFIGS = ("dmr-base", "mmm-ipc", "mmm-tp")


@dataclass
class MixedModeRow:
    """One workload's Figure 6 data."""

    workload: str
    reliable_ipc: Dict[str, ConfidenceInterval]
    performance_ipc: Dict[str, ConfidenceInterval]
    reliable_throughput: Dict[str, ConfidenceInterval]
    performance_throughput: Dict[str, ConfidenceInterval]
    overall_throughput: Dict[str, ConfidenceInterval]

    def normalized_performance_ipc(self) -> Dict[str, float]:
        """Performance-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_ipc.items()}, "dmr-base"
        )

    def normalized_reliable_ipc(self) -> Dict[str, float]:
        """Reliable-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.reliable_ipc.items()}, "dmr-base"
        )

    def normalized_performance_throughput(self) -> Dict[str, float]:
        """Performance-VM throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_throughput.items()},
            "dmr-base",
        )

    def normalized_overall_throughput(self) -> Dict[str, float]:
        """Machine-wide throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.overall_throughput.items()}, "dmr-base"
        )


@dataclass
class MixedModeResult:
    """Figure 6(a) and 6(b) of the paper."""

    settings: ExperimentSettings
    rows: List[MixedModeRow] = field(default_factory=list)

    def row(self, workload: str) -> MixedModeRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 6 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 6(a): normalised per-thread IPC of each guest VM."""
        table = TextTable(
            ["workload", "vm", *FIGURE6_CONFIGS],
            title="Figure 6(a): per-thread user IPC (normalised to DMR Base)",
        )
        for row in self.rows:
            reliable = row.normalized_reliable_ipc()
            performance = row.normalized_performance_ipc()
            table.add_row(
                [row.workload, "reliable", *[reliable[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "performance", *[performance[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 6(b): normalised throughput (performance VM and overall)."""
        table = TextTable(
            ["workload", "series", *FIGURE6_CONFIGS],
            title="Figure 6(b): throughput (normalised to DMR Base)",
        )
        for row in self.rows:
            perf = row.normalized_performance_throughput()
            overall = row.normalized_overall_throughput()
            table.add_row(
                [row.workload, "performance-vm", *[perf[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "overall", *[overall[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()


def _figure6_machine(
    settings: ExperimentSettings,
    workload: str,
    configuration: str,
    seed: int,
    config: Optional[SystemConfig] = None,
) -> MixedModeMachine:
    config = config if config is not None else settings.config()
    if configuration == "dmr-base":
        policy, perf_vcpus, perf_mode = "dmr-base", config.num_cores // 2, ReliabilityMode.RELIABLE
    elif configuration == "mmm-ipc":
        policy, perf_vcpus, perf_mode = "mmm-ipc", config.num_cores // 2, ReliabilityMode.PERFORMANCE
    elif configuration == "mmm-tp":
        policy, perf_vcpus, perf_mode = "mmm-tp", config.num_cores, ReliabilityMode.PERFORMANCE
    else:
        raise ExperimentError(f"unknown Figure 6 configuration {configuration!r}")
    specs = [
        VmSpec(
            name="reliable",
            workload=workload,
            num_vcpus=min(settings.reliable_vcpus, config.num_cores // 2),
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
        ),
        VmSpec(
            name="performance",
            workload=workload,
            num_vcpus=perf_vcpus,
            reliability=perf_mode,
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
        ),
    ]
    return MixedModeMachine(config=config, vm_specs=specs, policy=policy, seed=seed)


def run_mixed_mode_experiment(
    settings: Optional[ExperimentSettings] = None,
    configurations: Sequence[str] = FIGURE6_CONFIGS,
) -> MixedModeResult:
    """Reproduce Figure 6: mixed-mode consolidated-server performance."""
    settings = settings or ExperimentSettings()
    result = MixedModeResult(settings=settings)
    for workload in settings.workloads:
        reliable_ipc: Dict[str, ConfidenceInterval] = {}
        performance_ipc: Dict[str, ConfidenceInterval] = {}
        reliable_tput: Dict[str, ConfidenceInterval] = {}
        performance_tput: Dict[str, ConfidenceInterval] = {}
        overall_tput: Dict[str, ConfidenceInterval] = {}
        for configuration in configurations:
            samples: Dict[str, List[float]] = {
                "rel_ipc": [], "perf_ipc": [], "rel_tput": [], "perf_tput": [], "overall": []
            }
            for seed in settings.seeds:
                machine = _figure6_machine(settings, workload, configuration, seed)
                run = Simulator(machine, settings.options()).run()
                reliable = run.vm("reliable")
                performance = run.vm("performance")
                samples["rel_ipc"].append(reliable.average_user_ipc(run.total_cycles))
                samples["perf_ipc"].append(performance.average_user_ipc(run.total_cycles))
                samples["rel_tput"].append(reliable.throughput(run.total_cycles))
                samples["perf_tput"].append(performance.throughput(run.total_cycles))
                samples["overall"].append(run.overall_throughput())
            reliable_ipc[configuration] = confidence_interval_95(samples["rel_ipc"])
            performance_ipc[configuration] = confidence_interval_95(samples["perf_ipc"])
            reliable_tput[configuration] = confidence_interval_95(samples["rel_tput"])
            performance_tput[configuration] = confidence_interval_95(samples["perf_tput"])
            overall_tput[configuration] = confidence_interval_95(samples["overall"])
        result.rows.append(
            MixedModeRow(
                workload=workload,
                reliable_ipc=reliable_ipc,
                performance_ipc=performance_ipc,
                reliable_throughput=reliable_tput,
                performance_throughput=performance_tput,
                overall_throughput=overall_tput,
            )
        )
    return result


# ===================================================================== #
# Section 5.2: effect of PAB latency
# ===================================================================== #


@dataclass
class PabLatencyRow:
    """One workload's serial-vs-parallel PAB comparison."""

    workload: str
    parallel_ipc: float
    serial_ipc: float
    reliable_parallel_ipc: float
    reliable_serial_ipc: float

    @property
    def performance_ipc_change_percent(self) -> float:
        """IPC change of the performance VM when the PAB lookup is serialised."""
        return percent_change(self.serial_ipc, self.parallel_ipc)

    @property
    def reliable_ipc_change_percent(self) -> float:
        """IPC change of the reliable VM (expected to be ~0: it never uses the PAB)."""
        return percent_change(self.reliable_serial_ipc, self.reliable_parallel_ipc)


@dataclass
class PabLatencyResult:
    """Section 5.2's serial-PAB sensitivity study."""

    settings: ExperimentSettings
    rows: List[PabLatencyRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the study as a table of IPC changes."""
        table = TextTable(
            ["workload", "parallel ipc", "serial ipc", "perf change %", "reliable change %"],
            title="Effect of a 2-cycle serial PAB lookup (MMM-TP, performance VM)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.parallel_ipc,
                    row.serial_ipc,
                    row.performance_ipc_change_percent,
                    row.reliable_ipc_change_percent,
                ]
            )
        return table.render()


def run_pab_latency_study(
    settings: Optional[ExperimentSettings] = None,
) -> PabLatencyResult:
    """Reproduce the serial-vs-parallel PAB lookup comparison of Section 5.2."""
    settings = settings or ExperimentSettings()
    result = PabLatencyResult(settings=settings)
    for workload in settings.workloads:
        ipc: Dict[str, float] = {}
        reliable_ipc: Dict[str, float] = {}
        for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL):
            samples: List[float] = []
            reliable_samples: List[float] = []
            for seed in settings.seeds:
                machine = _figure6_machine(
                    settings,
                    workload,
                    "mmm-tp",
                    seed,
                    config=settings.config().with_pab_lookup(mode),
                )
                run = Simulator(machine, settings.options()).run()
                samples.append(run.vm("performance").average_user_ipc(run.total_cycles))
                reliable_samples.append(run.vm("reliable").average_user_ipc(run.total_cycles))
            ipc[mode.value] = _mean(samples)
            reliable_ipc[mode.value] = _mean(reliable_samples)
        result.rows.append(
            PabLatencyRow(
                workload=workload,
                parallel_ipc=ipc[PabLookupMode.PARALLEL.value],
                serial_ipc=ipc[PabLookupMode.SERIAL.value],
                reliable_parallel_ipc=reliable_ipc[PabLookupMode.PARALLEL.value],
                reliable_serial_ipc=reliable_ipc[PabLookupMode.SERIAL.value],
            )
        )
    return result


# ===================================================================== #
# Table 1: mode-switching overheads
# ===================================================================== #


@dataclass
class SwitchOverheadRow:
    """One workload's Table 1 data (cycles)."""

    workload: str
    enter_dmr_cycles: float
    leave_dmr_cycles: float


@dataclass
class SwitchOverheadResult:
    """Table 1 of the paper."""

    rows: List[SwitchOverheadRow] = field(default_factory=list)

    def row(self, workload: str) -> SwitchOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 1 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 1."""
        table = TextTable(
            ["workload", "Enter DMR", "Leave DMR"],
            title="Table 1: mixed-mode switching overheads (cycles, MMM-TP)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.enter_dmr_cycles:.0f}", f"{row.leave_dmr_cycles:.0f}"]
            )
        return table.render()

    def average_round_trip_cycles(self) -> float:
        """Average cost of one Enter + Leave pair across workloads."""
        if not self.rows:
            return 0.0
        return _mean([row.enter_dmr_cycles + row.leave_dmr_cycles for row in self.rows])


def run_switch_overhead_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    transitions_to_measure: int = 8,
    warmup_cycles: int = 8_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> SwitchOverheadResult:
    """Reproduce Table 1: the cycle cost of Enter-DMR and Leave-DMR.

    Unlike the timing experiments this uses the *full-size* paper
    configuration by default, because the Leave-DMR cost is dominated by the
    one-line-per-cycle flush of the 512 KB (8192-line) L2.
    """
    config = (config or paper_system_config()).validate()
    result = SwitchOverheadResult()
    for workload in workloads:
        specs = [
            VmSpec(
                name="reliable",
                workload=workload,
                num_vcpus=config.num_cores // 2,
                reliability=ReliabilityMode.RELIABLE,
                phase_scale=0.02,
            ),
            VmSpec(
                name="performance",
                workload=workload,
                num_vcpus=config.num_cores,
                reliability=ReliabilityMode.PERFORMANCE,
                phase_scale=0.02,
            ),
        ]
        machine = MixedModeMachine(config=config, vm_specs=specs, policy="mmm-tp", seed=seed)
        reliable_vcpu = machine.vms[0].vcpus[0]
        perf_vcpu_a = machine.vms[1].vcpus[0]
        perf_vcpu_b = machine.vms[1].vcpus[1]

        # Warm the caches with a little DMR and performance execution so that
        # transition costs reflect realistic cache contents.
        machine.hierarchy.begin_window(warmup_cycles)
        # In steady state every VCPU's scratchpad save area has been written
        # many times and lives in the (large) cache hierarchy; touch the slots
        # once so the measured transitions do not pay compulsory DRAM misses.
        for vcpu in (reliable_vcpu, perf_vcpu_a, perf_vcpu_b):
            for copy in ("primary", "redundant"):
                for address in machine.scratchpad.line_addresses(vcpu.vcpu_id, copy):
                    machine.hierarchy.load(0, address)
                    machine.hierarchy.load(1, address, coherent=False)
        machine.timing_model.run_quantum(
            workload=reliable_vcpu.workload,
            assignment=CoreAssignment(
                mode=ExecutionMode.DMR,
                primary_core=0,
                secondary_core=1,
                reunion_pair=machine.pair_factory(0, 1),
            ),
            cycle_budget=warmup_cycles,
            vcpu_id=reliable_vcpu.vcpu_id,
        )
        machine.timing_model.run_quantum(
            workload=perf_vcpu_a.workload,
            assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=2),
            cycle_budget=warmup_cycles,
            vcpu_id=perf_vcpu_a.vcpu_id,
        )

        enter_costs: List[float] = []
        leave_costs: List[float] = []
        for index in range(transitions_to_measure):
            leave = machine.transition_engine.leave_dmr(
                vocal_core=0,
                mute_core=1,
                vcpu=reliable_vcpu,
                incoming_vocal_vcpu=perf_vcpu_a,
                incoming_mute_vcpu=perf_vcpu_b,
                flavor=TransitionFlavor.MMM_TP,
                current_cycle=index,
            )
            leave_costs.append(leave.total_cycles)
            # Run a little in performance mode so the next Enter has work to
            # context switch out and the mute core has incoherent lines again.
            machine.timing_model.run_quantum(
                workload=perf_vcpu_a.workload,
                assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=0),
                cycle_budget=2_000,
                vcpu_id=perf_vcpu_a.vcpu_id,
            )
            machine.timing_model.run_quantum(
                workload=perf_vcpu_b.workload,
                assignment=CoreAssignment(mode=ExecutionMode.PERFORMANCE, primary_core=1),
                cycle_budget=2_000,
                vcpu_id=perf_vcpu_b.vcpu_id,
            )
            enter = machine.transition_engine.enter_dmr(
                vocal_core=0,
                mute_core=1,
                vcpu=reliable_vcpu,
                outgoing_vocal_vcpu=perf_vcpu_a,
                outgoing_mute_vcpu=perf_vcpu_b,
                flavor=TransitionFlavor.MMM_TP,
                current_cycle=index,
            )
            enter_costs.append(enter.total_cycles)
            # Run a little in DMR mode so the mute cache is populated again.
            machine.timing_model.run_quantum(
                workload=reliable_vcpu.workload,
                assignment=CoreAssignment(
                    mode=ExecutionMode.DMR,
                    primary_core=0,
                    secondary_core=1,
                    reunion_pair=machine.pair_factory(0, 1),
                ),
                cycle_budget=2_000,
                vcpu_id=reliable_vcpu.vcpu_id,
            )
        result.rows.append(
            SwitchOverheadRow(
                workload=workload,
                enter_dmr_cycles=_mean(enter_costs),
                leave_dmr_cycles=_mean(leave_costs),
            )
        )
    return result


# ===================================================================== #
# Table 2: cycles before switching modes (single-OS)
# ===================================================================== #


@dataclass
class SwitchFrequencyRow:
    """One workload's Table 2 data (cycles, extrapolated to full-size phases)."""

    workload: str
    user_cycles: float
    os_cycles: float

    @property
    def round_trip_cycles(self) -> float:
        """User plus OS cycles for one enter/exit round trip."""
        return self.user_cycles + self.os_cycles


@dataclass
class SwitchFrequencyResult:
    """Table 2 of the paper."""

    rows: List[SwitchFrequencyRow] = field(default_factory=list)

    def row(self, workload: str) -> SwitchFrequencyRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 2 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 2."""
        table = TextTable(
            ["workload", "User Cycles", "OS Cycles"],
            title="Table 2: cycles before switching modes (single-OS, non-DMR baseline)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.user_cycles / 1000:.0f}k", f"{row.os_cycles / 1000:.0f}k"]
            )
        return table.render()


def run_switch_frequency_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    phases_to_measure: int = 3,
    measurement_phase_scale: float = 0.1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> SwitchFrequencyResult:
    """Reproduce Table 2: average user and OS cycles between mode switches.

    The measurement runs a single VCPU of each workload on the non-DMR
    baseline and times each user phase (up to the OS entry) and each OS phase
    (up to the OS exit).  Phases are generated at ``measurement_phase_scale``
    of their full length and the measured cycles are scaled back up, which
    keeps the measurement cheap without changing the achieved IPC.
    """
    config = (config or evaluation_system_config()).validate()
    result = SwitchFrequencyResult()
    for workload in workloads:
        spec = VmSpec(
            name="baseline",
            workload=workload,
            num_vcpus=1,
            reliability=ReliabilityMode.RELIABLE,
            phase_scale=measurement_phase_scale,
            footprint_scale=1.0 / 8,
        )
        machine = MixedModeMachine(config=config, vm_specs=[spec], policy="no-dmr", seed=seed)
        vcpu = machine.vms[0].vcpus[0]
        assignment = CoreAssignment(mode=ExecutionMode.BASELINE, primary_core=0)
        machine.hierarchy.begin_window(1_000_000)

        user_cycles: List[float] = []
        os_cycles: List[float] = []
        # Discard the first partial phase, then time alternate phases.
        machine.timing_model.run_quantum(
            workload=vcpu.workload,
            assignment=assignment,
            cycle_budget=10_000_000,
            vcpu_id=vcpu.vcpu_id,
            stop_on_os_entry=True,
        )
        for _ in range(phases_to_measure):
            os_run = machine.timing_model.run_quantum(
                workload=vcpu.workload,
                assignment=assignment,
                cycle_budget=50_000_000,
                vcpu_id=vcpu.vcpu_id,
                stop_on_os_exit=True,
            )
            os_cycles.append(os_run.cycles)
            user_run = machine.timing_model.run_quantum(
                workload=vcpu.workload,
                assignment=assignment,
                cycle_budget=50_000_000,
                vcpu_id=vcpu.vcpu_id,
                stop_on_os_entry=True,
            )
            user_cycles.append(user_run.cycles)
        scale = 1.0 / measurement_phase_scale
        result.rows.append(
            SwitchFrequencyRow(
                workload=workload,
                user_cycles=_mean(user_cycles) * scale,
                os_cycles=_mean(os_cycles) * scale,
            )
        )
    return result


# ===================================================================== #
# Section 5.3: single-OS mode-switching overhead
# ===================================================================== #


@dataclass
class SingleOsOverheadRow:
    """Estimated single-OS mode-switching overhead for one workload."""

    workload: str
    switch_cycles: float
    round_trip_cycles: float

    @property
    def overhead_percent(self) -> float:
        """Switching cycles as a share of one user+OS round trip."""
        total = self.round_trip_cycles + self.switch_cycles
        if total == 0:
            return 0.0
        return self.switch_cycles / total * 100.0


@dataclass
class SingleOsOverheadResult:
    """The bottom-line analysis at the end of Section 5.3."""

    rows: List[SingleOsOverheadRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the overhead estimate."""
        table = TextTable(
            ["workload", "switch cycles", "user+OS cycles", "overhead %"],
            title="Single-OS mode-switching overhead (Table 1 + Table 2 combined)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    f"{row.switch_cycles:.0f}",
                    f"{row.round_trip_cycles / 1000:.0f}k",
                    row.overhead_percent,
                ]
            )
        return table.render()


def run_single_os_overhead_study(
    switch_overheads: Optional[SwitchOverheadResult] = None,
    switch_frequency: Optional[SwitchFrequencyResult] = None,
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
) -> SingleOsOverheadResult:
    """Combine Table 1 and Table 2 into the paper's single-OS overhead estimate."""
    switch_overheads = switch_overheads or run_switch_overhead_experiment(workloads)
    switch_frequency = switch_frequency or run_switch_frequency_experiment(workloads)
    result = SingleOsOverheadResult()
    for workload in workloads:
        overhead_row = switch_overheads.row(workload)
        frequency_row = switch_frequency.row(workload)
        result.rows.append(
            SingleOsOverheadRow(
                workload=workload,
                switch_cycles=overhead_row.enter_dmr_cycles + overhead_row.leave_dmr_cycles,
                round_trip_cycles=frequency_row.round_trip_cycles,
            )
        )
    return result


# ===================================================================== #
# Ablation: instruction window size and consistency model
# ===================================================================== #


@dataclass
class WindowAblationRow:
    """Reunion IPC under different window / consistency configurations."""

    workload: str
    ipc_by_variant: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        """IPC normalised to the paper's configuration (128-entry window, SC)."""
        return normalize_to(self.ipc_by_variant, "window128-sc")


@dataclass
class WindowAblationResult:
    """The design-space ablation behind Section 5.1's prior-work comparison."""

    settings: ExperimentSettings
    rows: List[WindowAblationRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the ablation."""
        variants = list(self.rows[0].ipc_by_variant) if self.rows else []
        table = TextTable(
            ["workload", *variants],
            title="Reunion per-thread IPC vs window size / consistency (normalised)",
        )
        for row in self.rows:
            normalized = row.normalized()
            table.add_row([row.workload, *[normalized[v] for v in variants]])
        return table.render()


def run_window_ablation(
    settings: Optional[ExperimentSettings] = None,
) -> WindowAblationResult:
    """Reproduce the prior-work comparison: a larger window and a TSO store
    buffer recover much of Reunion's IPC loss."""
    settings = settings or ExperimentSettings(workloads=("apache", "oltp"))
    variants = {
        "window128-sc": (128, ConsistencyModel.SEQUENTIAL),
        "window256-sc": (256, ConsistencyModel.SEQUENTIAL),
        "window256-tso": (256, ConsistencyModel.TSO),
    }
    result = WindowAblationResult(settings=settings)
    for workload in settings.workloads:
        ipc_by_variant: Dict[str, float] = {}
        for label, (window, consistency) in variants.items():
            config = (
                settings.config().with_window_entries(window).with_consistency(consistency)
            )
            spec = VmSpec(
                name="baseline",
                workload=workload,
                num_vcpus=config.num_cores // 2,
                reliability=ReliabilityMode.RELIABLE,
                phase_scale=settings.phase_scale,
                footprint_scale=settings.footprint_scale,
            )
            machine = MixedModeMachine(
                config=config, vm_specs=[spec], policy="dmr-base", seed=settings.seeds[0]
            )
            run = Simulator(machine, settings.options()).run()
            ipc_by_variant[label] = run.vm("baseline").average_user_ipc(run.total_cycles)
        result.rows.append(WindowAblationRow(workload=workload, ipc_by_variant=ipc_by_variant))
    return result
