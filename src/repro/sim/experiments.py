"""Per-figure / per-table experiment entry points.

Every table and figure of the paper's evaluation (Section 5) has one function
here that enumerates the relevant simulation cells, runs them through the
experiment engine, and returns a structured result object with the same
rows/series the paper reports:

======================  =====================================================
Paper artefact          Entry point
======================  =====================================================
Figure 5(a)/(b)         :func:`run_dmr_overhead_experiment`
Figure 6(a)/(b)         :func:`run_mixed_mode_experiment`
Section 5.2 (PAB)       :func:`run_pab_latency_study`
Table 1                 :func:`run_switch_overhead_experiment`
Table 2                 :func:`run_switch_frequency_experiment`
Section 5.3 bottom line :func:`run_single_os_overhead_study`
Window/TSO ablation     :func:`run_window_ablation`
Sections 2.1/3.4 faults :func:`run_fault_coverage_experiment`
Fault-space sweep       :func:`run_fault_rate_sweep`
Everything at once      :func:`run_all_experiments`
======================  =====================================================

All experiments share :class:`ExperimentSettings` (see
:mod:`repro.sim.settings`), which holds the scaled-down run lengths and the
capacity/footprint scale factor so that the whole evaluation completes on a
laptop while preserving the relative behaviour the paper reports.

Every experiment here is *declared* as an :class:`~repro.sim.specs.ExperimentSpec`
in the central registry of :mod:`repro.sim.specs`; the ``run_*`` functions
are thin, signature-compatible wrappers over :meth:`ExperimentSpec.run`.
This module keeps the domain pieces the specs are built from: the job
enumerators (``*_jobs``), the assembly steps (``assemble_*``) that fold the
runner's metrics into the result dataclasses below, and the dataclasses
themselves.  :func:`run_all_experiments` iterates the registry and
enumerates *every* spec's cells into one batch, which is what lets a
multi-worker runner overlap all of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.analysis.metrics import normalize_to, percent_change
from repro.analysis.tables import TextTable
from repro.common.stats import ConfidenceInterval, confidence_interval_95, mean
from repro.config.presets import evaluation_system_config, paper_system_config
from repro.config.system import PabLookupMode, SystemConfig
from repro.errors import ExperimentError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    SWEEP_CONFIGURATIONS,
    CampaignConfiguration,
)
from repro.faults.cells import assemble_campaign_reports, fault_campaign_jobs
from repro.faults.outcomes import CoverageReport
from repro.sim.jobs import (
    ABLATION_VARIANTS,
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    ExperimentJob,
)
from repro.sim.runner import ExperimentRunner, Metrics, default_runner
from repro.sim.settings import PAPER_TIMESLICE_CYCLES, ExperimentSettings
from repro.sim.timeline import CoreFailed, Timeline, VmArrived, VmDeparted
from repro.workloads.profiles import PAPER_WORKLOAD_NAMES

__all__ = [
    "PAPER_TIMESLICE_CYCLES",
    "ExperimentSettings",
    "FIGURE5_CONFIGS",
    "FIGURE6_CONFIGS",
    "ABLATION_VARIANTS",
    "DmrOverheadRow",
    "DmrOverheadResult",
    "MixedModeRow",
    "MixedModeResult",
    "PabLatencyRow",
    "PabLatencyResult",
    "SwitchOverheadRow",
    "SwitchOverheadResult",
    "SwitchFrequencyRow",
    "SwitchFrequencyResult",
    "SingleOsOverheadRow",
    "SingleOsOverheadResult",
    "WindowAblationRow",
    "WindowAblationResult",
    "DegradationRow",
    "DegradationResult",
    "ConsolidationChurnRow",
    "ConsolidationChurnResult",
    "FaultCoverageRow",
    "FaultCoverageResult",
    "FaultRateSweepResult",
    "FAULT_DEFAULT_SEEDS",
    "FAULT_COVERAGE_TITLE",
    "AllExperimentsResult",
    "figure5_jobs",
    "figure6_jobs",
    "pab_jobs",
    "switch_overhead_jobs",
    "switch_frequency_jobs",
    "window_ablation_jobs",
    "degradation_timeline",
    "degradation_jobs",
    "churn_timeline",
    "churn_jobs",
    "fault_campaign_jobs",
    "assemble_figure5",
    "assemble_figure6",
    "assemble_pab",
    "assemble_table1",
    "assemble_table2",
    "assemble_ablation",
    "assemble_degradation",
    "assemble_churn",
    "assemble_fault_coverage",
    "combine_single_os",
    "run_dmr_overhead_experiment",
    "run_mixed_mode_experiment",
    "run_pab_latency_study",
    "run_switch_overhead_experiment",
    "run_switch_frequency_experiment",
    "run_single_os_overhead_study",
    "run_window_ablation",
    "run_degradation_experiment",
    "run_consolidation_churn_experiment",
    "run_fault_coverage_experiment",
    "run_fault_rate_sweep",
    "run_all_experiments",
]

JobResults = Mapping[ExperimentJob, Metrics]


# ===================================================================== #
# Figure 5: overhead of dual redundancy
# ===================================================================== #


@dataclass
class DmrOverheadRow:
    """One workload's Figure 5 data."""

    workload: str
    per_thread_ipc: Dict[str, ConfidenceInterval]
    throughput: Dict[str, ConfidenceInterval]

    def normalized_ipc(self) -> Dict[str, float]:
        """Per-thread IPC normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.per_thread_ipc.items()}, "no-dmr-2x"
        )

    def normalized_throughput(self) -> Dict[str, float]:
        """Throughput normalised to the ``no-dmr-2x`` configuration."""
        return normalize_to(
            {name: ci.mean for name, ci in self.throughput.items()}, "no-dmr-2x"
        )


@dataclass
class DmrOverheadResult:
    """Figure 5(a) and 5(b) of the paper."""

    settings: ExperimentSettings
    rows: List[DmrOverheadRow] = field(default_factory=list)

    def row(self, workload: str) -> DmrOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 5 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 5(a): normalised per-thread user IPC."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(a): per-thread user IPC (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_ipc()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 5(b): normalised overall throughput."""
        table = TextTable(
            ["workload", *FIGURE5_CONFIGS],
            title="Figure 5(b): overall throughput (normalised to No DMR 2X)",
        )
        for row in self.rows:
            normalized = row.normalized_throughput()
            table.add_row([row.workload, *[normalized[c] for c in FIGURE5_CONFIGS]])
        return table.render()


def figure5_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """Every (workload, configuration, seed) cell of Figure 5."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure5", workload=workload, variant=configuration, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for configuration in FIGURE5_CONFIGS
        for seed in settings.seeds
    ]


def assemble_figure5(
    settings: ExperimentSettings, results: JobResults
) -> DmrOverheadResult:
    cell = settings.cell_settings()
    result = DmrOverheadResult(settings=settings)
    for workload in settings.workloads:
        ipc: Dict[str, ConfidenceInterval] = {}
        throughput: Dict[str, ConfidenceInterval] = {}
        for configuration in FIGURE5_CONFIGS:
            samples = [
                results[
                    ExperimentJob(
                        kind="figure5", workload=workload, variant=configuration,
                        seed=seed, settings=cell,
                    )
                ]
                for seed in settings.seeds
            ]
            ipc[configuration] = confidence_interval_95(
                [sample["user_ipc"] for sample in samples]
            )
            throughput[configuration] = confidence_interval_95(
                [sample["throughput"] for sample in samples]
            )
        result.rows.append(
            DmrOverheadRow(workload=workload, per_thread_ipc=ipc, throughput=throughput)
        )
    return result


def run_dmr_overhead_experiment(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> DmrOverheadResult:
    """Reproduce Figure 5: per-thread IPC and throughput of DMR vs. no DMR.

    Thin wrapper over the registered ``figure5`` spec.
    """
    from repro.sim.specs import experiment

    return experiment("figure5").run(settings, runner=runner)


# ===================================================================== #
# Figure 6: mixed-mode performance
# ===================================================================== #


@dataclass
class MixedModeRow:
    """One workload's Figure 6 data."""

    workload: str
    reliable_ipc: Dict[str, ConfidenceInterval]
    performance_ipc: Dict[str, ConfidenceInterval]
    reliable_throughput: Dict[str, ConfidenceInterval]
    performance_throughput: Dict[str, ConfidenceInterval]
    overall_throughput: Dict[str, ConfidenceInterval]

    def normalized_performance_ipc(self) -> Dict[str, float]:
        """Performance-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_ipc.items()}, "dmr-base"
        )

    def normalized_reliable_ipc(self) -> Dict[str, float]:
        """Reliable-VM per-thread IPC normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.reliable_ipc.items()}, "dmr-base"
        )

    def normalized_performance_throughput(self) -> Dict[str, float]:
        """Performance-VM throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.performance_throughput.items()},
            "dmr-base",
        )

    def normalized_overall_throughput(self) -> Dict[str, float]:
        """Machine-wide throughput normalised to DMR Base."""
        return normalize_to(
            {name: ci.mean for name, ci in self.overall_throughput.items()}, "dmr-base"
        )


@dataclass
class MixedModeResult:
    """Figure 6(a) and 6(b) of the paper."""

    settings: ExperimentSettings
    rows: List[MixedModeRow] = field(default_factory=list)

    def row(self, workload: str) -> MixedModeRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Figure 6 row for workload {workload!r}")

    def format_ipc_table(self) -> str:
        """Figure 6(a): normalised per-thread IPC of each guest VM."""
        table = TextTable(
            ["workload", "vm", *FIGURE6_CONFIGS],
            title="Figure 6(a): per-thread user IPC (normalised to DMR Base)",
        )
        for row in self.rows:
            reliable = row.normalized_reliable_ipc()
            performance = row.normalized_performance_ipc()
            table.add_row(
                [row.workload, "reliable", *[reliable[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "performance", *[performance[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()

    def format_throughput_table(self) -> str:
        """Figure 6(b): normalised throughput (performance VM and overall)."""
        table = TextTable(
            ["workload", "series", *FIGURE6_CONFIGS],
            title="Figure 6(b): throughput (normalised to DMR Base)",
        )
        for row in self.rows:
            perf = row.normalized_performance_throughput()
            overall = row.normalized_overall_throughput()
            table.add_row(
                [row.workload, "performance-vm", *[perf[c] for c in FIGURE6_CONFIGS]]
            )
            table.add_row(
                [row.workload, "overall", *[overall[c] for c in FIGURE6_CONFIGS]]
            )
        return table.render()


def figure6_jobs(
    settings: ExperimentSettings,
    configurations: Sequence[str] = FIGURE6_CONFIGS,
) -> List[ExperimentJob]:
    """Every (workload, configuration, seed) cell of Figure 6."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="figure6", workload=workload, variant=configuration, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for configuration in configurations
        for seed in settings.seeds
    ]


_FIGURE6_SERIES = (
    ("reliable_ipc", "reliable_ipc"),
    ("performance_ipc", "performance_ipc"),
    ("reliable_throughput", "reliable_throughput"),
    ("performance_throughput", "performance_throughput"),
    ("overall_throughput", "overall_throughput"),
)


def assemble_figure6(
    settings: ExperimentSettings,
    results: JobResults,
    configurations: Sequence[str],
) -> MixedModeResult:
    cell = settings.cell_settings()
    result = MixedModeResult(settings=settings)
    for workload in settings.workloads:
        series: Dict[str, Dict[str, ConfidenceInterval]] = {
            name: {} for name, _ in _FIGURE6_SERIES
        }
        for configuration in configurations:
            samples = [
                results[
                    ExperimentJob(
                        kind="figure6", workload=workload, variant=configuration,
                        seed=seed, settings=cell,
                    )
                ]
                for seed in settings.seeds
            ]
            for name, metric in _FIGURE6_SERIES:
                series[name][configuration] = confidence_interval_95(
                    [sample[metric] for sample in samples]
                )
        result.rows.append(MixedModeRow(workload=workload, **series))
    return result


def run_mixed_mode_experiment(
    settings: Optional[ExperimentSettings] = None,
    configurations: Sequence[str] = FIGURE6_CONFIGS,
    runner: Optional[ExperimentRunner] = None,
) -> MixedModeResult:
    """Reproduce Figure 6: mixed-mode consolidated-server performance.

    Thin wrapper over the registered ``figure6`` spec.
    """
    from repro.sim.specs import experiment

    return experiment("figure6").run(
        settings, runner=runner, configurations=tuple(configurations)
    )


# ===================================================================== #
# Section 5.2: effect of PAB latency
# ===================================================================== #


@dataclass
class PabLatencyRow:
    """One workload's serial-vs-parallel PAB comparison."""

    workload: str
    parallel_ipc: float
    serial_ipc: float
    reliable_parallel_ipc: float
    reliable_serial_ipc: float

    @property
    def performance_ipc_change_percent(self) -> float:
        """IPC change of the performance VM when the PAB lookup is serialised."""
        return percent_change(self.serial_ipc, self.parallel_ipc)

    @property
    def reliable_ipc_change_percent(self) -> float:
        """IPC change of the reliable VM (expected to be ~0: it never uses the PAB)."""
        return percent_change(self.reliable_serial_ipc, self.reliable_parallel_ipc)


@dataclass
class PabLatencyResult:
    """Section 5.2's serial-PAB sensitivity study."""

    settings: ExperimentSettings
    rows: List[PabLatencyRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the study as a table of IPC changes."""
        table = TextTable(
            ["workload", "parallel ipc", "serial ipc", "perf change %", "reliable change %"],
            title="Effect of a 2-cycle serial PAB lookup (MMM-TP, performance VM)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.parallel_ipc,
                    row.serial_ipc,
                    row.performance_ipc_change_percent,
                    row.reliable_ipc_change_percent,
                ]
            )
        return table.render()


def pab_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """Every (workload, lookup-mode, seed) cell of the PAB latency study."""
    cell = settings.cell_settings()
    return [
        ExperimentJob(
            kind="pab", workload=workload, variant=mode.value, seed=seed, settings=cell,
        )
        for workload in settings.workloads
        for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL)
        for seed in settings.seeds
    ]


def assemble_pab(
    settings: ExperimentSettings, results: JobResults
) -> PabLatencyResult:
    cell = settings.cell_settings()
    result = PabLatencyResult(settings=settings)
    for workload in settings.workloads:
        ipc: Dict[str, float] = {}
        reliable_ipc: Dict[str, float] = {}
        for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL):
            samples = [
                results[
                    ExperimentJob(
                        kind="pab", workload=workload, variant=mode.value, seed=seed,
                        settings=cell,
                    )
                ]
                for seed in settings.seeds
            ]
            ipc[mode.value] = mean(sample["performance_ipc"] for sample in samples)
            reliable_ipc[mode.value] = mean(
                sample["reliable_ipc"] for sample in samples
            )
        result.rows.append(
            PabLatencyRow(
                workload=workload,
                parallel_ipc=ipc[PabLookupMode.PARALLEL.value],
                serial_ipc=ipc[PabLookupMode.SERIAL.value],
                reliable_parallel_ipc=reliable_ipc[PabLookupMode.PARALLEL.value],
                reliable_serial_ipc=reliable_ipc[PabLookupMode.SERIAL.value],
            )
        )
    return result


def run_pab_latency_study(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> PabLatencyResult:
    """Reproduce the serial-vs-parallel PAB lookup comparison of Section 5.2.

    Thin wrapper over the registered ``pab`` spec.
    """
    from repro.sim.specs import experiment

    return experiment("pab").run(settings, runner=runner)


# ===================================================================== #
# Table 1: mode-switching overheads
# ===================================================================== #


@dataclass
class SwitchOverheadRow:
    """One workload's Table 1 data (cycles)."""

    workload: str
    enter_dmr_cycles: float
    leave_dmr_cycles: float


@dataclass
class SwitchOverheadResult:
    """Table 1 of the paper."""

    rows: List[SwitchOverheadRow] = field(default_factory=list)

    def row(self, workload: str) -> SwitchOverheadRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 1 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 1."""
        table = TextTable(
            ["workload", "Enter DMR", "Leave DMR"],
            title="Table 1: mixed-mode switching overheads (cycles, MMM-TP)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.enter_dmr_cycles:.0f}", f"{row.leave_dmr_cycles:.0f}"]
            )
        return table.render()

    def average_round_trip_cycles(self) -> float:
        """Average cost of one Enter + Leave pair across workloads."""
        if not self.rows:
            return 0.0
        return mean(row.enter_dmr_cycles + row.leave_dmr_cycles for row in self.rows)


def switch_overhead_jobs(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    transitions_to_measure: int = 8,
    warmup_cycles: int = 8_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> List[ExperimentJob]:
    """One Table 1 cell per workload."""
    resolved = (config or paper_system_config()).validate()
    params = (
        ("transitions_to_measure", int(transitions_to_measure)),
        ("warmup_cycles", int(warmup_cycles)),
    )
    return [
        ExperimentJob(
            kind="table1", workload=workload, seed=seed, config=resolved, params=params,
        )
        for workload in workloads
    ]


def assemble_table1(
    jobs: Sequence[ExperimentJob], results: JobResults
) -> SwitchOverheadResult:
    result = SwitchOverheadResult()
    for job in jobs:
        metrics = results[job]
        result.rows.append(
            SwitchOverheadRow(
                workload=job.workload,
                enter_dmr_cycles=metrics["enter_dmr_cycles"],
                leave_dmr_cycles=metrics["leave_dmr_cycles"],
            )
        )
    return result


def run_switch_overhead_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    transitions_to_measure: int = 8,
    warmup_cycles: int = 8_000,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> SwitchOverheadResult:
    """Reproduce Table 1: the cycle cost of Enter-DMR and Leave-DMR.

    Unlike the timing experiments this uses the *full-size* paper
    configuration by default, because the Leave-DMR cost is dominated by the
    one-line-per-cycle flush of the 512 KB (8192-line) L2.

    Thin wrapper over the registered ``table1`` spec.
    """
    from repro.sim.specs import experiment

    settings = (
        ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
    )
    return experiment("table1").run(
        settings,
        runner=runner,
        explicit_workloads=True,
        transitions_to_measure=transitions_to_measure,
        warmup_cycles=warmup_cycles,
        config=config,
    )


# ===================================================================== #
# Table 2: cycles before switching modes (single-OS)
# ===================================================================== #


@dataclass
class SwitchFrequencyRow:
    """One workload's Table 2 data (cycles, extrapolated to full-size phases)."""

    workload: str
    user_cycles: float
    os_cycles: float

    @property
    def round_trip_cycles(self) -> float:
        """User plus OS cycles for one enter/exit round trip."""
        return self.user_cycles + self.os_cycles


@dataclass
class SwitchFrequencyResult:
    """Table 2 of the paper."""

    rows: List[SwitchFrequencyRow] = field(default_factory=list)

    def row(self, workload: str) -> SwitchFrequencyRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no Table 2 row for workload {workload!r}")

    def format_table(self) -> str:
        """Render Table 2."""
        table = TextTable(
            ["workload", "User Cycles", "OS Cycles"],
            title="Table 2: cycles before switching modes (single-OS, non-DMR baseline)",
        )
        for row in self.rows:
            table.add_row(
                [row.workload, f"{row.user_cycles / 1000:.0f}k", f"{row.os_cycles / 1000:.0f}k"]
            )
        return table.render()


def switch_frequency_jobs(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    phases_to_measure: int = 3,
    measurement_phase_scale: float = 0.1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
) -> List[ExperimentJob]:
    """One Table 2 cell per workload."""
    resolved = (config or evaluation_system_config()).validate()
    params = (
        ("phases_to_measure", int(phases_to_measure)),
        ("measurement_phase_scale", float(measurement_phase_scale)),
    )
    return [
        ExperimentJob(
            kind="table2", workload=workload, seed=seed, config=resolved, params=params,
        )
        for workload in workloads
    ]


def assemble_table2(
    jobs: Sequence[ExperimentJob], results: JobResults
) -> SwitchFrequencyResult:
    result = SwitchFrequencyResult()
    for job in jobs:
        metrics = results[job]
        result.rows.append(
            SwitchFrequencyRow(
                workload=job.workload,
                user_cycles=metrics["user_cycles"],
                os_cycles=metrics["os_cycles"],
            )
        )
    return result


def run_switch_frequency_experiment(
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    phases_to_measure: int = 3,
    measurement_phase_scale: float = 0.1,
    config: Optional[SystemConfig] = None,
    seed: int = 0,
    runner: Optional[ExperimentRunner] = None,
) -> SwitchFrequencyResult:
    """Reproduce Table 2: average user and OS cycles between mode switches.

    The measurement runs a single VCPU of each workload on the non-DMR
    baseline and times each user phase (up to the OS entry) and each OS phase
    (up to the OS exit).  Phases are generated at ``measurement_phase_scale``
    of their full length and the measured cycles are scaled back up, which
    keeps the measurement cheap without changing the achieved IPC.

    Thin wrapper over the registered ``table2`` spec.
    """
    from repro.sim.specs import experiment

    settings = (
        ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
    )
    return experiment("table2").run(
        settings,
        runner=runner,
        explicit_workloads=True,
        phases_to_measure=phases_to_measure,
        measurement_phase_scale=measurement_phase_scale,
        config=config,
    )


# ===================================================================== #
# Section 5.3: single-OS mode-switching overhead
# ===================================================================== #


@dataclass
class SingleOsOverheadRow:
    """Estimated single-OS mode-switching overhead for one workload."""

    workload: str
    switch_cycles: float
    round_trip_cycles: float

    @property
    def overhead_percent(self) -> float:
        """Switching cycles as a share of one user+OS round trip."""
        total = self.round_trip_cycles + self.switch_cycles
        if total == 0:
            return 0.0
        return self.switch_cycles / total * 100.0


@dataclass
class SingleOsOverheadResult:
    """The bottom-line analysis at the end of Section 5.3."""

    rows: List[SingleOsOverheadRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the overhead estimate."""
        table = TextTable(
            ["workload", "switch cycles", "user+OS cycles", "overhead %"],
            title="Single-OS mode-switching overhead (Table 1 + Table 2 combined)",
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    f"{row.switch_cycles:.0f}",
                    f"{row.round_trip_cycles / 1000:.0f}k",
                    row.overhead_percent,
                ]
            )
        return table.render()


def combine_single_os(
    switch_overheads: SwitchOverheadResult,
    switch_frequency: SwitchFrequencyResult,
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
) -> SingleOsOverheadResult:
    """Fold Table 1 and Table 2 rows into the single-OS overhead estimate."""
    result = SingleOsOverheadResult()
    for workload in workloads:
        overhead_row = switch_overheads.row(workload)
        frequency_row = switch_frequency.row(workload)
        result.rows.append(
            SingleOsOverheadRow(
                workload=workload,
                switch_cycles=overhead_row.enter_dmr_cycles + overhead_row.leave_dmr_cycles,
                round_trip_cycles=frequency_row.round_trip_cycles,
            )
        )
    return result


def run_single_os_overhead_study(
    switch_overheads: Optional[SwitchOverheadResult] = None,
    switch_frequency: Optional[SwitchFrequencyResult] = None,
    workloads: Sequence[str] = PAPER_WORKLOAD_NAMES,
    runner: Optional[ExperimentRunner] = None,
    seed: int = 0,
) -> SingleOsOverheadResult:
    """Combine Table 1 and Table 2 into the paper's single-OS overhead estimate.

    With neither table given, this is a thin wrapper over the registered
    ``single-os`` spec (one batch containing both tables' cells); existing
    results are combined without running anything.
    """
    if switch_overheads is None and switch_frequency is None:
        from repro.sim.specs import experiment

        settings = (
            ExperimentSettings().with_workloads(tuple(workloads)).with_seeds((seed,))
        )
        return experiment("single-os").run(
            settings, runner=runner, explicit_workloads=True
        )
    switch_overheads = switch_overheads or run_switch_overhead_experiment(
        workloads, seed=seed, runner=runner
    )
    switch_frequency = switch_frequency or run_switch_frequency_experiment(
        workloads, seed=seed, runner=runner
    )
    return combine_single_os(switch_overheads, switch_frequency, workloads)


# ===================================================================== #
# Ablation: instruction window size and consistency model
# ===================================================================== #


@dataclass
class WindowAblationRow:
    """Reunion IPC under different window / consistency configurations."""

    workload: str
    ipc_by_variant: Dict[str, float]

    def normalized(self) -> Dict[str, float]:
        """IPC normalised to the paper's configuration (128-entry window, SC)."""
        return normalize_to(self.ipc_by_variant, "window128-sc")


@dataclass
class WindowAblationResult:
    """The design-space ablation behind Section 5.1's prior-work comparison."""

    settings: ExperimentSettings
    rows: List[WindowAblationRow] = field(default_factory=list)

    def format_table(self) -> str:
        """Render the ablation."""
        variants = list(self.rows[0].ipc_by_variant) if self.rows else []
        table = TextTable(
            ["workload", *variants],
            title="Reunion per-thread IPC vs window size / consistency (normalised)",
        )
        for row in self.rows:
            normalized = row.normalized()
            table.add_row([row.workload, *[normalized[v] for v in variants]])
        return table.render()


def window_ablation_jobs(settings: ExperimentSettings) -> List[ExperimentJob]:
    """One ablation cell per (workload, variant)."""
    cell = settings.cell_settings()
    seed = settings.seeds[0]
    return [
        ExperimentJob(
            kind="ablation", workload=workload, variant=variant, seed=seed,
            settings=cell,
        )
        for workload in settings.workloads
        for variant in ABLATION_VARIANTS
    ]


def assemble_ablation(
    settings: ExperimentSettings, results: JobResults
) -> WindowAblationResult:
    cell = settings.cell_settings()
    seed = settings.seeds[0]
    result = WindowAblationResult(settings=settings)
    for workload in settings.workloads:
        ipc_by_variant = {
            variant: results[
                ExperimentJob(
                    kind="ablation", workload=workload, variant=variant, seed=seed,
                    settings=cell,
                )
            ]["user_ipc"]
            for variant in ABLATION_VARIANTS
        }
        result.rows.append(WindowAblationRow(workload=workload, ipc_by_variant=ipc_by_variant))
    return result


def run_window_ablation(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
) -> WindowAblationResult:
    """Reproduce the prior-work comparison: a larger window and a TSO store
    buffer recover much of Reunion's IPC loss.

    Thin wrapper over the registered ``ablation`` spec; without explicit
    settings the spec's workload limit restricts the sweep to two workloads.
    """
    from repro.sim.specs import experiment

    return experiment("ablation").run(
        settings, runner=runner, explicit_workloads=settings is not None
    )


# ===================================================================== #
# Dynamic scenarios: graceful degradation under accumulating core failures
# ===================================================================== #


@dataclass
class DegradationRow:
    """One workload's throughput/IPC across the failed-core sweep."""

    workload: str
    #: Keyed by the number of failed cores.
    throughput: Dict[int, ConfidenceInterval]
    user_ipc: Dict[int, ConfidenceInterval]
    paused_quanta: Dict[int, float]

    def normalized_throughput(self) -> Dict[int, float]:
        """Throughput normalised to the healthiest (fewest failures) cell."""
        baseline = self.throughput[min(self.throughput)].mean
        if baseline == 0:
            return {failed: 0.0 for failed in self.throughput}
        return {
            failed: interval.mean / baseline
            for failed, interval in self.throughput.items()
        }


@dataclass
class DegradationResult:
    """Graceful degradation: cores fail on a schedule mid-run."""

    settings: ExperimentSettings
    failures: Sequence[int]
    num_cores: int
    rows: List[DegradationRow] = field(default_factory=list)

    def row(self, workload: str) -> DegradationRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no degradation row for workload {workload!r}")

    def format_table(self) -> str:
        """Render throughput against the surviving-core count."""
        table = TextTable(
            [
                "workload",
                *[f"{self.num_cores - failed} cores" for failed in self.failures],
            ],
            title=(
                "Graceful degradation: overall throughput vs surviving cores "
                "(cores fail mid-run; Reunion DMR machine)"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    *[row.throughput[failed].mean for failed in self.failures],
                ]
            )
        return table.render()


def degradation_timeline(settings: ExperimentSettings, failed_cores: int) -> Timeline:
    """The failure schedule of one degradation cell.

    ``failed_cores`` permanent faults strike at evenly spaced cycles across
    the measurement window, retiring the highest-numbered cores first, so a
    single run sweeps from full capacity down to its final surviving-core
    count -- every event fires mid-run.
    """
    num_cores = settings.config().num_cores
    if failed_cores >= num_cores:
        raise ExperimentError(
            f"cannot fail {failed_cores} of {num_cores} cores "
            "(at least one core must survive)"
        )
    start, window = settings.warmup_cycles, settings.total_cycles
    return Timeline.of(
        *(
            CoreFailed(
                cycle=start + (index + 1) * window // (failed_cores + 1),
                core_id=num_cores - 1 - index,
            )
            for index in range(failed_cores)
        )
    )


def degradation_jobs(
    settings: ExperimentSettings, failures: Sequence[int]
) -> List[ExperimentJob]:
    """Every (workload, failed-core count, seed) degradation cell."""
    cell = settings.cell_settings()
    jobs: List[ExperimentJob] = []
    for workload in settings.workloads:
        for failed in failures:
            params: tuple = (("failed_cores", int(failed)),)
            if failed:
                timeline = degradation_timeline(settings, int(failed))
                params += (("timeline", timeline.to_json()),)
            for seed in settings.seeds:
                jobs.append(
                    ExperimentJob(
                        kind="degradation",
                        workload=workload,
                        variant=f"fail{int(failed)}",
                        seed=seed,
                        settings=cell,
                        params=params,
                    )
                )
    return jobs


def assemble_degradation(
    settings: ExperimentSettings,
    failures: Sequence[int],
    jobs: Sequence[ExperimentJob],
    results: JobResults,
) -> DegradationResult:
    result = DegradationResult(
        settings=settings,
        failures=tuple(int(failed) for failed in failures),
        num_cores=settings.config().num_cores,
    )
    samples: Dict[tuple, List[Metrics]] = {}
    for job in jobs:
        key = (job.workload, int(job.param("failed_cores", 0)))
        samples.setdefault(key, []).append(results[job])
    for workload in settings.workloads:
        throughput: Dict[int, ConfidenceInterval] = {}
        user_ipc: Dict[int, ConfidenceInterval] = {}
        paused: Dict[int, float] = {}
        for failed in result.failures:
            cells = samples[(workload, failed)]
            throughput[failed] = confidence_interval_95(
                [cell["throughput"] for cell in cells]
            )
            user_ipc[failed] = confidence_interval_95(
                [cell["user_ipc"] for cell in cells]
            )
            paused[failed] = mean(cell["paused_vcpu_quanta"] for cell in cells)
        result.rows.append(
            DegradationRow(
                workload=workload,
                throughput=throughput,
                user_ipc=user_ipc,
                paused_quanta=paused,
            )
        )
    return result


def run_degradation_experiment(
    settings: Optional[ExperimentSettings] = None,
    failures: Optional[Sequence[int]] = None,
    runner: Optional[ExperimentRunner] = None,
) -> DegradationResult:
    """Sweep graceful degradation: throughput vs surviving-core count as
    permanent faults retire cores on a schedule mid-run.

    Thin wrapper over the registered ``degradation`` spec.
    """
    from repro.sim.specs import experiment

    return experiment("degradation").run(
        settings,
        runner=runner,
        explicit_workloads=settings is not None,
        failures=tuple(failures) if failures is not None else None,
    )


# ===================================================================== #
# Dynamic scenarios: consolidation-server VM churn
# ===================================================================== #


@dataclass
class ConsolidationChurnRow:
    """One workload's consolidation-churn data."""

    workload: str
    throughput: ConfidenceInterval
    utilization: ConfidenceInterval
    transition_cycles: ConfidenceInterval
    events_applied: float


@dataclass
class ConsolidationChurnResult:
    """Consolidation churn: guest VMs arrive and depart mid-run."""

    settings: ExperimentSettings
    extra_vms: int
    rows: List[ConsolidationChurnRow] = field(default_factory=list)

    def row(self, workload: str) -> ConsolidationChurnRow:
        """Row for one workload."""
        for row in self.rows:
            if row.workload == workload:
                return row
        raise ExperimentError(f"no churn row for workload {workload!r}")

    def format_table(self) -> str:
        """Render utilisation and transition overhead under churn."""
        table = TextTable(
            [
                "workload",
                "throughput",
                "core utilization",
                "transition cycles",
                "events",
            ],
            title=(
                f"Consolidation churn: {self.extra_vms} burst VM(s) "
                "arriving/departing mid-run (MMM-TP)"
            ),
        )
        for row in self.rows:
            table.add_row(
                [
                    row.workload,
                    row.throughput.mean,
                    row.utilization.mean,
                    f"{row.transition_cycles.mean:.0f}",
                    f"{row.events_applied:.0f}",
                ]
            )
        return table.render()


def churn_timeline(settings: ExperimentSettings, extra_vms: int) -> Timeline:
    """The arrival/departure schedule of one consolidation-churn cell.

    Burst VM ``i`` arrives at the ``(i+1)``-th and departs at the
    ``(i+3)``-th of ``extra_vms + 3`` evenly spaced points across the
    measurement window: each burst stays for two intervals, so consecutive
    bursts genuinely overlap by one interval and the machine passes through
    distinct consolidation levels (0, 1 and 2 concurrent bursts).
    """
    start, window = settings.warmup_cycles, settings.total_cycles
    points = extra_vms + 3
    events = []
    for index in range(extra_vms):
        events.append(
            VmArrived(
                cycle=start + (index + 1) * window // points,
                vm_name=f"burst{index}",
            )
        )
        events.append(
            VmDeparted(
                cycle=start + (index + 3) * window // points,
                vm_name=f"burst{index}",
            )
        )
    return Timeline.of(*events)


def churn_jobs(settings: ExperimentSettings, extra_vms: int) -> List[ExperimentJob]:
    """Every (workload, seed) consolidation-churn cell."""
    cell = settings.cell_settings()
    timeline = churn_timeline(settings, extra_vms)
    params = (
        ("extra_vms", int(extra_vms)),
        ("timeline", timeline.to_json()),
    )
    return [
        ExperimentJob(
            kind="churn",
            workload=workload,
            variant=f"vms{int(extra_vms)}",
            seed=seed,
            settings=cell,
            params=params,
        )
        for workload in settings.workloads
        for seed in settings.seeds
    ]


def assemble_churn(
    settings: ExperimentSettings,
    extra_vms: int,
    jobs: Sequence[ExperimentJob],
    results: JobResults,
) -> ConsolidationChurnResult:
    result = ConsolidationChurnResult(settings=settings, extra_vms=int(extra_vms))
    samples: Dict[str, List[Metrics]] = {}
    for job in jobs:
        samples.setdefault(job.workload, []).append(results[job])
    for workload in settings.workloads:
        cells = samples[workload]
        result.rows.append(
            ConsolidationChurnRow(
                workload=workload,
                throughput=confidence_interval_95(
                    [cell["overall_throughput"] for cell in cells]
                ),
                utilization=confidence_interval_95(
                    [cell["utilization"] for cell in cells]
                ),
                transition_cycles=confidence_interval_95(
                    [cell["transition_cycles"] for cell in cells]
                ),
                events_applied=mean(cell["events_applied"] for cell in cells),
            )
        )
    return result


def run_consolidation_churn_experiment(
    settings: Optional[ExperimentSettings] = None,
    extra_vms: Optional[int] = None,
    runner: Optional[ExperimentRunner] = None,
) -> ConsolidationChurnResult:
    """Sweep consolidation churn: utilisation and transition overhead while
    guest VMs arrive at and depart from the consolidated server mid-run.

    Thin wrapper over the registered ``consolidation-churn`` spec.
    """
    from repro.sim.specs import experiment

    return experiment("consolidation-churn").run(
        settings,
        runner=runner,
        explicit_workloads=settings is not None,
        extra_vms=int(extra_vms) if extra_vms is not None else None,
    )


# ===================================================================== #
# Sections 2.1 / 3.4: fault-injection coverage (cell-shaped campaign)
# ===================================================================== #

#: Seeds the fault-campaign entry points sweep by default.  Campaign trials
#: are cheap, cached and embarrassingly parallel, so a ten-seed sweep (for
#: tight confidence intervals) is the default rather than the exception --
#: matching the default :attr:`ExperimentSettings.seeds` sweep.
FAULT_DEFAULT_SEEDS = tuple(range(10))

#: Title shared by every rendering of the coverage comparison (here and in
#: :func:`repro.sim.reporting.format_coverage_reports`).
FAULT_COVERAGE_TITLE = (
    "Fault-injection coverage "
    "(fraction of faults from which reliable state was protected)"
)


@dataclass
class FaultCoverageRow:
    """One campaign configuration's coverage, aggregated over the seed sweep."""

    configuration: str
    #: Every trial of every seed, merged in enumeration order.
    report: CoverageReport
    #: Coverage fraction achieved by each seed's share of the campaign.
    coverage_by_seed: Dict[int, float]

    @property
    def coverage_interval(self) -> ConfidenceInterval:
        """95% confidence interval of the coverage across seeds."""
        return confidence_interval_95(self.coverage_by_seed.values())

    @property
    def coverage(self) -> float:
        """Fraction of faults from which reliable state was protected."""
        return self.report.coverage

    @property
    def silent_corruption_rate(self) -> float:
        """Fraction of faults that silently corrupted reliable state."""
        return self.report.silent_corruption_rate


@dataclass
class FaultCoverageResult:
    """The paper's protection comparison (Sections 2.1 and 3.4)."""

    trials_per_site: int
    seeds: Sequence[int]
    fault_rate: float = 1.0
    rows: List[FaultCoverageRow] = field(default_factory=list)

    def row(self, configuration: str) -> FaultCoverageRow:
        """Row for one campaign configuration."""
        for row in self.rows:
            if row.configuration == configuration:
                return row
        raise ExperimentError(f"no fault-coverage row for configuration {configuration!r}")

    def reports(self) -> List[CoverageReport]:
        """The merged per-configuration coverage reports."""
        return [row.report for row in self.rows]

    def format_table(self) -> str:
        """Render the coverage comparison."""
        table = TextTable(
            ["configuration", "trials", "coverage", "95% ci", "silent corruption rate"],
            title=FAULT_COVERAGE_TITLE,
        )
        for row in self.rows:
            interval = row.coverage_interval
            table.add_row(
                [
                    row.configuration,
                    row.report.total,
                    row.coverage,
                    f"±{interval.half_width:.3f}",
                    row.silent_corruption_rate,
                ]
            )
        return table.render()


def assemble_fault_coverage(
    jobs: Sequence[ExperimentJob],
    results: JobResults,
    trials_per_site: int,
    seeds: Sequence[int],
    fault_rate: float,
) -> FaultCoverageResult:
    merged, per_seed = assemble_campaign_reports(jobs, results)
    result = FaultCoverageResult(
        trials_per_site=trials_per_site, seeds=tuple(seeds), fault_rate=fault_rate
    )
    for configuration, report in merged.items():
        result.rows.append(
            FaultCoverageRow(
                configuration=configuration,
                report=report,
                coverage_by_seed={
                    seed: per_seed[(configuration, seed)].coverage for seed in seeds
                },
            )
        )
    return result


def run_fault_coverage_experiment(
    trials_per_site: int = 50,
    configurations: Sequence[CampaignConfiguration] = DEFAULT_CONFIGURATIONS,
    seeds: Sequence[int] = FAULT_DEFAULT_SEEDS,
    fault_rate: float = 1.0,
    config: Optional[SystemConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FaultCoverageResult:
    """Reproduce the protection comparison of Sections 2.1 and 3.4.

    The campaign runs through the experiment engine: every (configuration,
    fault-site, seed, trials-chunk) cell is an independent job, so a
    multi-worker runner fans the trials out and a warm cache re-renders the
    comparison without injecting a single fault.

    Thin wrapper over the registered ``faults`` spec.
    """
    from repro.sim.specs import experiment

    settings = ExperimentSettings().with_seeds(tuple(dict.fromkeys(seeds)))
    return experiment("faults").run(
        settings,
        runner=runner,
        trials=trials_per_site,
        configurations=tuple(configurations),
        fault_rate=fault_rate,
        config=config,
    )


@dataclass
class FaultRateSweepResult:
    """Coverage as a function of the fault-rate scale (the fault-space sweep)."""

    trials_per_site: int
    seeds: Sequence[int]
    fault_rates: Sequence[float]
    #: One full coverage result per swept fault rate.
    by_rate: Dict[float, FaultCoverageResult] = field(default_factory=dict)

    def format_table(self) -> str:
        """Render silent-corruption rates across the swept fault space."""
        table = TextTable(
            ["configuration", *[f"rate {rate:g}" for rate in self.fault_rates]],
            title=(
                "Fault-space sweep: silent corruption rate vs fault-rate scale "
                f"({self.trials_per_site} trials/site, {len(tuple(self.seeds))} seeds)"
            ),
        )
        configurations = [row.configuration for row in self.by_rate[self.fault_rates[0]].rows]
        for configuration in configurations:
            table.add_row(
                [
                    configuration,
                    *[
                        self.by_rate[rate].row(configuration).silent_corruption_rate
                        for rate in self.fault_rates
                    ],
                ]
            )
        return table.render()


def run_fault_rate_sweep(
    fault_rates: Sequence[float] = (0.25, 0.5, 1.0),
    trials_per_site: int = 50,
    configurations: Sequence[CampaignConfiguration] = SWEEP_CONFIGURATIONS,
    seeds: Sequence[int] = FAULT_DEFAULT_SEEDS,
    config: Optional[SystemConfig] = None,
    runner: Optional[ExperimentRunner] = None,
) -> FaultRateSweepResult:
    """Sweep the fault space: coverage per configuration across fault rates.

    All (rate, configuration, site, seed, chunk) cells are enumerated into
    *one* batch, so a parallel runner overlaps the whole sweep and cached
    cells are shared with any other campaign run at the same rate.

    Thin wrapper over the registered ``faults`` spec (its ``sweep_rates``
    option is what turns the campaign into the sweep).
    """
    if not fault_rates:
        raise ExperimentError("a fault-rate sweep needs at least one rate")
    from repro.sim.specs import experiment

    settings = ExperimentSettings().with_seeds(tuple(dict.fromkeys(seeds)))
    return experiment("faults").run(
        settings,
        runner=runner,
        trials=trials_per_site,
        configurations=tuple(configurations),
        sweep_rates=tuple(fault_rates),
        config=config,
    )


# ===================================================================== #
# Everything at once
# ===================================================================== #


@dataclass
class AllExperimentsResult:
    """Every experiment's result, produced from one job batch."""

    settings: ExperimentSettings
    figure5: DmrOverheadResult
    figure6: MixedModeResult
    pab: PabLatencyResult
    table1: Optional[SwitchOverheadResult] = None
    table2: Optional[SwitchFrequencyResult] = None
    single_os: Optional[SingleOsOverheadResult] = None
    ablation: Optional[WindowAblationResult] = None
    faults: Optional[FaultCoverageResult] = None
    #: Results of any *user-registered* specs (beyond the paper's own),
    #: keyed by spec name -- a custom experiment registered in
    #: ``EXPERIMENTS`` rides the same batch and lands here.
    extras: Dict[str, object] = field(default_factory=dict)
    #: Raw per-cell metrics keyed by cache key -- the canonical, fully
    #: serializable record of the batch (used by the determinism tests to
    #: compare serial and parallel runs byte for byte).
    job_metrics: Dict[str, Metrics] = field(default_factory=dict)

    def sections(self) -> List[str]:
        """Every reproduced table, in the paper's presentation order."""
        parts = [
            self.figure5.format_ipc_table(),
            self.figure5.format_throughput_table(),
            self.figure6.format_ipc_table(),
            self.figure6.format_throughput_table(),
            self.pab.format_table(),
        ]
        if self.table1 is not None:
            parts.append(self.table1.format_table())
        if self.table2 is not None:
            parts.append(self.table2.format_table())
        if self.single_os is not None:
            parts.append(self.single_os.format_table())
        if self.ablation is not None:
            parts.append(self.ablation.format_table())
        if self.faults is not None:
            parts.append(self.faults.format_table())
        if self.extras:
            from repro.sim.specs import EXPERIMENTS

            for name, result in self.extras.items():
                parts.append(EXPERIMENTS[name].to_table(result))
        return parts

    def render(self) -> str:
        """The full plain-text report."""
        return "\n\n".join(self.sections())


#: Spec names assembled into :class:`AllExperimentsResult`'s named fields
#: (dashes become underscores); every other registered spec is an "extra".
_RUN_ALL_FIELDS = (
    "figure5", "figure6", "pab", "table1", "table2", "single-os", "ablation",
    "faults",
)


def run_all_experiments(
    settings: Optional[ExperimentSettings] = None,
    runner: Optional[ExperimentRunner] = None,
    include_switching: bool = True,
    include_ablation: bool = True,
    include_faults: bool = True,
) -> AllExperimentsResult:
    """Run the whole evaluation -- every registered spec -- as one job batch.

    The experiment list comes from the ``EXPERIMENTS`` registry of
    :mod:`repro.sim.specs`: every spec's cells (simulation cells and
    fault-campaign cells alike, plus any user-registered spec's) are
    enumerated up front and handed to the runner in a single call, so a
    multi-worker runner overlaps cells *across* experiments (not just
    within one) and a warm cache re-run executes nothing at all.
    """
    from repro.sim.specs import EXPERIMENTS, SpecRequest

    settings = settings or ExperimentSettings()
    runner = runner or default_runner()
    included = {
        "switching": include_switching,
        "ablation": include_ablation,
        "faults": include_faults,
    }

    requests: Dict[str, SpecRequest] = {}
    jobs_by_spec: Dict[str, List[ExperimentJob]] = {}
    batch: List[ExperimentJob] = []
    for name, spec in EXPERIMENTS.items():
        if spec.run_all_group is not None and not included.get(spec.run_all_group, True):
            continue
        # No per-spec options: every spec sizes itself from the settings
        # object (the faults spec, for instance, falls back to
        # ``settings.fault_trials_per_site``).
        request = spec.request(settings)
        requests[name] = request
        jobs_by_spec[name] = spec.enumerate_jobs(request)
        batch += jobs_by_spec[name]

    results = runner.run_jobs(batch)

    def assembled(name: str) -> Optional[object]:
        if name not in requests:
            return None
        return EXPERIMENTS[name].assemble(requests[name], jobs_by_spec[name], results)

    return AllExperimentsResult(
        settings=settings,
        figure5=assembled("figure5"),
        figure6=assembled("figure6"),
        pab=assembled("pab"),
        table1=assembled("table1"),
        table2=assembled("table2"),
        single_os=assembled("single-os"),
        ablation=assembled("ablation"),
        faults=assembled("faults"),
        extras={
            name: assembled(name)
            for name in requests
            if name not in _RUN_ALL_FIELDS
        },
        job_metrics={job.cache_key(): dict(results[job]) for job in batch},
    )
