"""Simulation result containers and derived metrics.

The paper's work metric is *committed user instructions*; per-thread
performance is the average of each active VCPU's user IPC (user instructions
divided by total cycles), and throughput is the machine-wide sum.  The result
containers compute exactly those quantities, per VM and overall, plus the
bookkeeping the other experiments need (mode transitions, protection events,
cache statistics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import SimulationError
from repro.virt.vcpu import ReliabilityMode


@dataclass
class VcpuResult:
    """Per-VCPU outcome of a simulation."""

    vcpu_id: int
    vm_id: int
    user_instructions: int
    os_instructions: int
    total_instructions: int
    active_cycles: int
    mode_switches: int
    mode_switch_cycles: int

    def user_ipc(self, machine_cycles: int) -> float:
        """User instructions per machine cycle."""
        if machine_cycles <= 0:
            return 0.0
        return self.user_instructions / machine_cycles


@dataclass
class VmResult:
    """Per-guest-VM outcome of a simulation."""

    vm_id: int
    name: str
    workload_name: str
    reliability: ReliabilityMode
    vcpus: List[VcpuResult] = field(default_factory=list)

    @property
    def num_vcpus(self) -> int:
        """Number of VCPUs the VM exposed."""
        return len(self.vcpus)

    @property
    def user_instructions(self) -> int:
        """Total committed user instructions across the VM's VCPUs."""
        return sum(vcpu.user_instructions for vcpu in self.vcpus)

    @property
    def total_instructions(self) -> int:
        """Total committed instructions across the VM's VCPUs."""
        return sum(vcpu.total_instructions for vcpu in self.vcpus)

    def average_user_ipc(self, machine_cycles: int) -> float:
        """Average per-VCPU user IPC (the paper's per-thread metric)."""
        if not self.vcpus or machine_cycles <= 0:
            return 0.0
        return sum(v.user_ipc(machine_cycles) for v in self.vcpus) / len(self.vcpus)

    def throughput(self, machine_cycles: int) -> float:
        """Aggregate user instructions per cycle for the VM."""
        if machine_cycles <= 0:
            return 0.0
        return self.user_instructions / machine_cycles


@dataclass
class SimulationResult:
    """Complete outcome of one simulation run."""

    policy_name: str
    total_cycles: int
    warmup_cycles: int
    vm_results: List[VmResult]
    transitions: int = 0
    transition_cycles: int = 0
    enter_dmr_transitions: int = 0
    leave_dmr_transitions: int = 0
    average_enter_dmr_cycles: float = 0.0
    average_leave_dmr_cycles: float = 0.0
    paused_vcpu_quanta: int = 0
    violation_counts: Dict[str, int] = field(default_factory=dict)
    hierarchy_stats: Dict[str, float] = field(default_factory=dict)
    quantum_stats: Dict[str, float] = field(default_factory=dict)
    #: Cycles trimmed off the final warmup quantum so measurement started
    #: exactly at ``warmup_cycles`` (0 when the warmup aligned naturally).
    #: Before the clamp those cycles were silently shifted into warmup and
    #: dropped from the measured window.
    warmup_clamp_cycles: int = 0
    #: Timeline events applied during the run (warmup included -- the event
    #: schedule describes the whole run, not just the measured window).
    timeline_events_applied: int = 0
    #: Timeline events scheduled at or after the end of the run, which
    #: therefore never fired.
    timeline_events_pending: int = 0
    #: Applied events counted per event kind (``core-failed``, ...).
    timeline_stats: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def _vm_index(self) -> "tuple[Dict[str, VmResult], Dict[int, VmResult]]":
        """Cached name and id lookup tables over ``vm_results``.

        The metric extractors look VMs up once per metric, so the previous
        linear scans re-walked the VM list for every extracted number; the
        index is built once and rebuilt only if ``vm_results`` changes
        length (the one mutation the builders perform).
        """
        cached = self.__dict__.get("_vm_index_cache")
        if cached is None or cached[0] != len(self.vm_results):
            by_name = {vm.name: vm for vm in self.vm_results}
            by_id = {vm.vm_id: vm for vm in self.vm_results}
            cached = (len(self.vm_results), by_name, by_id)
            self.__dict__["_vm_index_cache"] = cached
        return cached[1], cached[2]

    def vm(self, name: str) -> VmResult:
        """Result of the VM with the given spec name."""
        by_name, _ = self._vm_index()
        try:
            return by_name[name]
        except KeyError:
            raise SimulationError(f"no VM named {name!r} in this result") from None

    def vm_by_id(self, vm_id: int) -> VmResult:
        """Result of the VM with the given id."""
        _, by_id = self._vm_index()
        try:
            return by_id[vm_id]
        except KeyError:
            raise SimulationError(f"no VM with id {vm_id} in this result") from None

    # ------------------------------------------------------------------ #
    # Machine-wide metrics
    # ------------------------------------------------------------------ #

    @property
    def total_user_instructions(self) -> int:
        """Committed user instructions across every VM."""
        return sum(vm.user_instructions for vm in self.vm_results)

    def overall_throughput(self) -> float:
        """Machine-wide user instructions per cycle."""
        if self.total_cycles <= 0:
            return 0.0
        return self.total_user_instructions / self.total_cycles

    def average_user_ipc(self) -> float:
        """Average per-VCPU user IPC across every VCPU of every VM."""
        vcpus = [v for vm in self.vm_results for v in vm.vcpus]
        if not vcpus or self.total_cycles <= 0:
            return 0.0
        return sum(v.user_ipc(self.total_cycles) for v in vcpus) / len(vcpus)

    def per_vm_throughput(self) -> Dict[str, float]:
        """Throughput of every VM keyed by VM name."""
        return {vm.name: vm.throughput(self.total_cycles) for vm in self.vm_results}

    def silent_corruptions(self) -> int:
        """Number of silent corruptions recorded (should be zero for an MMM)."""
        return int(self.violation_counts.get("SILENT_CORRUPTION", 0))

    def to_dict(self) -> Dict[str, object]:
        """A plain-dictionary summary convenient for logging and tests."""
        return {
            "policy": self.policy_name,
            "total_cycles": self.total_cycles,
            "overall_throughput": self.overall_throughput(),
            "average_user_ipc": self.average_user_ipc(),
            "transitions": self.transitions,
            "transition_cycles": self.transition_cycles,
            "warmup_clamp_cycles": self.warmup_clamp_cycles,
            "timeline_events_applied": self.timeline_events_applied,
            "timeline_stats": dict(self.timeline_stats),
            "vms": {
                vm.name: {
                    "user_ipc": vm.average_user_ipc(self.total_cycles),
                    "throughput": vm.throughput(self.total_cycles),
                    "user_instructions": vm.user_instructions,
                    "num_vcpus": vm.num_vcpus,
                }
                for vm in self.vm_results
            },
            "violations": dict(self.violation_counts),
        }


def build_vm_results(machine, total_cycles: int) -> List[VmResult]:
    """Collect per-VM results from a machine's VCPU accumulators."""
    results: List[VmResult] = []
    for vm in machine.vms:
        vm_result = VmResult(
            vm_id=vm.vm_id,
            name=vm.name,
            workload_name=vm.workload_name,
            reliability=vm.reliability,
        )
        for vcpu in vm.vcpus:
            vm_result.vcpus.append(
                VcpuResult(
                    vcpu_id=vcpu.vcpu_id,
                    vm_id=vm.vm_id,
                    user_instructions=vcpu.committed_user_instructions,
                    os_instructions=vcpu.committed_os_instructions,
                    total_instructions=vcpu.committed_instructions,
                    active_cycles=vcpu.active_cycles,
                    mode_switches=vcpu.mode_switches,
                    mode_switch_cycles=vcpu.mode_switch_cycles,
                )
            )
        results.append(vm_result)
    return results
