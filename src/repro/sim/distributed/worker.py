"""The pull-based worker loop behind ``repro worker``.

A worker needs nothing but the coordinator URL: it leases a chunk of
wire-format cells, rebuilds them into :class:`~repro.sim.jobs.ExperimentJob`
values (verifying each embedded cache key -- the code-skew guard), executes
them through the same local backends the engine uses (serial with one
worker slot, a process pool with more), and reports per-cell metrics or
errors back.  Crashing mid-lease is safe by design: the coordinator
re-queues the chunk when the lease expires.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.sim.distributed.protocol import (
    CoordinatorClient,
    ProtocolError,
    job_failure,
    job_result,
)
from repro.sim.jobs import ExperimentJob, code_fingerprint, execute_job
from repro.sim.runner import MAX_CHUNK_SIZE, ProcessBackend, SerialBackend


def _execute_capture(job: ExperimentJob) -> Dict[str, object]:
    """Run one cell, capturing failure per cell (module-level: must pickle).

    A raising cell must cost the worker exactly that cell, not the whole
    leased chunk, so the executor returns an envelope instead of raising
    across the pool boundary.
    """
    try:
        return {"metrics": execute_job(job)}
    except Exception as error:  # noqa: BLE001 - reported to the coordinator
        return {"error": f"{type(error).__name__}: {error}"}


def default_worker_id() -> str:
    """A human-traceable worker identity: ``host:pid``."""
    return f"{socket.gethostname()}:{os.getpid()}"


@dataclass
class WorkerStats:
    """What one worker loop did before returning."""

    batches: int = 0
    executed: int = 0
    failed: int = 0
    #: Lease polls that came back empty.
    idle_polls: int = 0

    def summary(self) -> str:
        return (
            f"{self.executed} executed, {self.failed} failed, "
            f"{self.batches} leases, {self.idle_polls} idle polls"
        )


def run_worker(
    coordinator: str,
    jobs: int = 1,
    worker_id: Optional[str] = None,
    poll_seconds: float = 0.5,
    max_batches: Optional[int] = None,
    max_idle_seconds: Optional[float] = None,
    announce: Optional[Callable[[str], None]] = None,
) -> WorkerStats:
    """Lease, execute and report until told (or allowed) to stop.

    ``jobs`` is the worker's local parallelism: 1 executes leased chunks
    serially, more fans them out over a process pool.  ``max_batches``
    bounds the loop for tests; ``max_idle_seconds`` lets a fleet drain
    itself once the queue stays empty that long (default: poll forever,
    the daemon behaviour).  Returns the loop's :class:`WorkerStats`.
    """
    client = CoordinatorClient(coordinator)
    identity = worker_id or default_worker_id()
    fingerprint = code_fingerprint()
    backend = SerialBackend() if jobs <= 1 else ProcessBackend()
    stats = WorkerStats()
    say = announce or (lambda message: None)
    idle_since: Optional[float] = None

    say(f"worker {identity}: polling {coordinator} ({jobs} local slot(s))")
    while max_batches is None or stats.batches < max_batches:
        reply = client.lease(
            identity, fingerprint, max_jobs=max(jobs, 1) * MAX_CHUNK_SIZE
        )
        payloads = reply.get("jobs") or []
        if not payloads:
            stats.idle_polls += 1
            now = time.monotonic()
            if idle_since is None:
                idle_since = now
            if (
                max_idle_seconds is not None
                and now - idle_since >= max_idle_seconds
            ):
                say(f"worker {identity}: idle for {max_idle_seconds}s, draining")
                break
            time.sleep(poll_seconds)
            continue
        idle_since = None
        lease = str(reply.get("lease"))
        batch = [ExperimentJob.from_wire(payload) for payload in payloads]
        stats.batches += 1
        say(f"worker {identity}: leased {len(batch)} cell(s)")
        results: List[Dict[str, object]] = []
        failures: List[Dict[str, object]] = []
        for job, envelope in backend.execute(_execute_capture, batch, jobs):
            metrics = envelope.get("metrics")
            if isinstance(metrics, dict):
                results.append(job_result(job.cache_key(), metrics))
            else:
                failures.append(
                    job_failure(job.cache_key(), str(envelope.get("error")))
                )
        stats.executed += len(results)
        stats.failed += len(failures)
        client.complete(lease, identity, results, failures)
    say(f"worker {identity}: done ({stats.summary()})")
    return stats


__all__ = [
    "WorkerStats",
    "default_worker_id",
    "run_worker",
]


#: Re-exported for callers that want to surface transport failures.
WorkerError = ProtocolError
