"""Distributed execution of experiment cells over plain HTTP.

The package implements the ``distributed`` runner backend promised by the
:func:`~repro.sim.runner.register_runner_backend` seam:

* :mod:`repro.sim.distributed.coordinator` -- the in-memory job board and
  its stdlib :class:`http.server.ThreadingHTTPServer` front end.  Clients
  submit wire-format :class:`~repro.sim.jobs.ExperimentJob` descriptions;
  pull-based workers lease them in adaptive chunks (the same chunker the
  ``process`` backend uses per IPC round) and report metrics back.  Leases
  expire and re-queue automatically, so a killed worker never loses a
  batch, and the coordinator dedupes by content-addressed cache key --
  concurrent clients submitting overlapping grids share work for free.
* :mod:`repro.sim.distributed.worker` -- the ``repro worker`` loop: lease,
  execute locally (serial or a process pool), complete, repeat.
* :mod:`repro.sim.distributed.backend` -- the client-side
  :class:`~repro.sim.runner.RunnerBackend` that makes all of this
  transparent to the engine: ``--backend distributed --coordinator URL``
  and nothing else changes.
* :mod:`repro.sim.distributed.protocol` -- the JSON-over-HTTP wire calls
  shared by all three.

Everything is standard library only (``http.server``, ``urllib``,
``threading``, ``json``); determinism is inherited from the jobs
themselves -- every cell is a seeded plain-value description, and metrics
survive a JSON round trip byte-identically, so serial, process and
distributed runs of the same grid produce identical result documents.
"""

from repro.sim.distributed.backend import (
    COORDINATOR_ENV,
    DistributedBackend,
    coordinator_from_env,
)
from repro.sim.distributed.coordinator import Coordinator, CoordinatorServer
from repro.sim.distributed.protocol import CoordinatorClient, ProtocolError
from repro.sim.distributed.worker import WorkerStats, run_worker

__all__ = [
    "COORDINATOR_ENV",
    "Coordinator",
    "CoordinatorClient",
    "CoordinatorServer",
    "DistributedBackend",
    "ProtocolError",
    "WorkerStats",
    "coordinator_from_env",
    "run_worker",
]
