"""The coordinator: an in-memory job board behind a stdlib HTTP server.

:class:`Coordinator` owns the state -- submitted cells keyed by their
content-addressed cache key, a FIFO of pending keys, active leases, and
(for ``repro serve``) whole-run records -- and exposes one method per
protocol endpoint.  :class:`CoordinatorServer` wraps it in a
:class:`http.server.ThreadingHTTPServer`, one thread per request, with all
state guarded by a single lock/condition pair.

Design points:

* **Dedupe by cache key.**  A cell's key digests its full description plus
  the package sources, so two clients submitting overlapping grids are
  funnelled into one execution; the coordinator's optional on-disk
  :class:`~repro.sim.store.ResultCache` extends the dedupe across
  coordinator restarts and makes results visible to plain local runs.
  Submissions probe the cache in one batched manifest lookup, and each
  completed lease chunk lands in one batched segment append.
* **Lazy lease expiry.**  No background reaper thread: every mutating or
  polling call first re-queues the leases whose deadline passed (front of
  the queue, so recovered work runs next).  A killed worker therefore
  never loses a batch -- its chunk re-queues after ``lease_seconds``.
* **Late completion is welcome.**  A worker that reports after its lease
  expired still lands results for cells nobody else finished first; the
  duplicate executions of re-queued cells are idempotent (deterministic
  seeds) and simply counted.
* **Code-fingerprint handshake.**  Clients and workers send their
  :func:`~repro.sim.jobs.code_fingerprint`; a mismatch is refused with
  HTTP 409, because mixing results from different code versions would
  poison the shared cache.
* **Injectable clock.**  ``Coordinator(clock=...)`` lets the lease-expiry
  tests advance time without sleeping.
"""

from __future__ import annotations

import json
import threading
import time
import uuid
from collections import deque
from dataclasses import asdict, dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Deque, Dict, List, Mapping, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.sim.distributed.protocol import (
    DEFAULT_COLLECT_SECONDS,
    DEFAULT_LEASE_SECONDS,
    PROTOCOL_VERSION,
    ProtocolError,
    string_list,
)
from repro.sim.jobs import ExperimentJob, code_fingerprint
from repro.sim.runner import Metrics, adaptive_chunk_size
from repro.sim.store import AnyResultCache, COMPACT_SEPARATORS, make_result_cache
from repro.sim.settings import ExperimentSettings

#: Workers idle longer than this stop counting toward lease-chunk sizing.
WORKER_HORIZON_SECONDS = 300.0

#: Hard cap on one ``/jobs/collect`` long poll; clients re-poll.
MAX_COLLECT_SECONDS = 60.0


class Conflict(ProtocolError):
    """A refusal mapped to HTTP 409 (fingerprint skew, incomplete run)."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=409)


class NotFound(ProtocolError):
    """An unknown resource, mapped to HTTP 404."""

    def __init__(self, message: str) -> None:
        super().__init__(message, status=404)


@dataclass
class JobRecord:
    """One submitted cell's lifecycle on the job board."""

    job: ExperimentJob
    key: str
    status: str = "pending"  # pending | leased | done | failed
    metrics: Optional[Metrics] = None
    error: Optional[str] = None
    lease: Optional[str] = None
    deadline: float = 0.0
    #: How often the cell has been handed to a worker.
    attempts: int = 0


@dataclass
class RunRecord:
    """One submitted evaluation run (``repro serve``)."""

    run_id: str
    settings: ExperimentSettings
    names: List[str]
    requests: Dict[str, object]
    jobs_by_spec: Dict[str, List[ExperimentJob]]
    batch: List[ExperimentJob]
    keys: List[str] = field(default_factory=list)


class Coordinator:
    """The job board: submit, lease, complete, collect, and run tracking."""

    def __init__(
        self,
        cache: Optional[AnyResultCache] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.cache = cache
        self.lease_seconds = lease_seconds
        self.clock = clock
        self.fingerprint = code_fingerprint()
        self._lock = threading.Lock()
        self._completed = threading.Condition(self._lock)
        self._records: Dict[str, JobRecord] = {}
        self._queue: Deque[str] = deque()
        self._workers: Dict[str, float] = {}
        self._runs: Dict[str, RunRecord] = {}
        self._counters: Dict[str, int] = {
            "submitted": 0,
            "deduped": 0,
            "cache_hits": 0,
            "leases_granted": 0,
            "completed": 0,
            "late_completions": 0,
            "failed": 0,
            "requeues": 0,
        }

    # ------------------------------------------------------------------ #
    # Internals (called with the lock held)
    # ------------------------------------------------------------------ #

    def _check_fingerprint(self, claimed: object) -> None:
        if claimed is not None and claimed != self.fingerprint:
            raise Conflict(
                "code fingerprint mismatch: this coordinator runs different "
                "repro code than the caller; executing its cells would poison "
                "the shared result cache"
            )

    def _expire_leases(self, now: float) -> None:
        """Re-queue every leased cell whose deadline passed (lazy reaper)."""
        for record in self._records.values():
            if record.status == "leased" and record.deadline <= now:
                record.status = "pending"
                record.lease = None
                # Front of the queue: recovered work should run next, so a
                # killed worker delays its chunk by one lease window at most.
                self._queue.appendleft(record.key)
                self._counters["requeues"] += 1

    def _probe_cache(
        self, keyed: Sequence[Tuple[ExperimentJob, str]]
    ) -> Dict[str, Metrics]:
        """One batched manifest probe for every key not already on the board."""
        if self.cache is None:
            return {}
        unknown = [
            (job.kind, key) for job, key in keyed if key not in self._records
        ]
        if not unknown:
            return {}
        return self.cache.load_many_entries(unknown)

    def _enqueue(
        self,
        job: ExperimentJob,
        key: str,
        cache_hits: Mapping[str, Metrics],
    ) -> str:
        """Admit one cell; returns ``queued``/``deduped``/``cache_hit``/``done``."""
        record = self._records.get(key)
        if record is not None:
            self._counters["deduped"] += 1
            return "done" if record.status in ("done", "failed") else "deduped"
        record = JobRecord(job=job, key=key)
        hit = cache_hits.get(key)
        if hit is not None:
            record.status = "done"
            record.metrics = hit
            self._records[key] = record
            self._counters["cache_hits"] += 1
            return "cache_hit"
        self._records[key] = record
        self._queue.append(key)
        self._counters["submitted"] += 1
        return "queued"

    def _finish(self, record: JobRecord, metrics: Metrics) -> None:
        record.status = "done"
        record.metrics = metrics
        record.lease = None
        self._counters["completed"] += 1

    def _store_finished(self, finished: Sequence[JobRecord]) -> None:
        """Land a completed chunk in the shared cache: one batched append.

        The manifest publication itself is left to the store's own
        record-count threshold -- an unpublished record is still durable
        (the next process's rebuild scan finds it), so a coordinator killed
        between chunks never loses results.
        """
        if self.cache is None or not finished:
            return
        self.cache.store_entries(
            [
                (record.job.kind, record.key, record.job.to_dict(), record.metrics or {})
                for record in finished
            ]
        )

    # ------------------------------------------------------------------ #
    # Protocol endpoints
    # ------------------------------------------------------------------ #

    def submit(
        self, payloads: Sequence[Mapping[str, object]], fingerprint: object
    ) -> Dict[str, object]:
        """``POST /jobs/submit``: admit wire-format cells, deduped by key."""
        self._check_fingerprint(fingerprint)
        # Rebuild outside the lock: `from_wire` verifies each key, which
        # costs one digest per cell.
        jobs = [ExperimentJob.from_wire(payload) for payload in payloads]
        keyed = [(job, job.cache_key()) for job in jobs]
        outcomes = {"queued": 0, "deduped": 0, "cache_hit": 0, "done": 0}
        with self._completed:
            now = self.clock()
            self._expire_leases(now)
            cache_hits = self._probe_cache(keyed)
            for job, key in keyed:
                outcomes[self._enqueue(job, key, cache_hits)] += 1
            if outcomes["cache_hit"] or outcomes["done"]:
                self._completed.notify_all()
        return {"protocol": PROTOCOL_VERSION, **outcomes}

    def lease(
        self,
        worker: str,
        fingerprint: object,
        max_jobs: Optional[int] = None,
    ) -> Dict[str, object]:
        """``POST /jobs/lease``: hand a pending chunk to a worker."""
        self._check_fingerprint(fingerprint)
        with self._lock:
            now = self.clock()
            self._expire_leases(now)
            self._workers[worker] = now
            active = sum(
                1
                for seen in self._workers.values()
                if now - seen <= WORKER_HORIZON_SECONDS
            )
            chunk = adaptive_chunk_size(len(self._queue), max(1, active))
            if max_jobs is not None:
                chunk = max(1, min(chunk, int(max_jobs)))
            leased: List[JobRecord] = []
            lease_id = uuid.uuid4().hex
            while self._queue and len(leased) < chunk:
                record = self._records[self._queue.popleft()]
                if record.status != "pending":
                    continue
                record.status = "leased"
                record.lease = lease_id
                record.deadline = now + self.lease_seconds
                record.attempts += 1
                leased.append(record)
            if leased:
                self._counters["leases_granted"] += 1
            pending = len(self._queue)
        return {
            "protocol": PROTOCOL_VERSION,
            "lease": lease_id if leased else None,
            "lease_seconds": self.lease_seconds,
            "jobs": [record.job.to_wire() for record in leased],
            "pending": pending,
        }

    def complete(
        self,
        lease: object,
        worker: object,
        results: Sequence[Mapping[str, object]],
        failures: Sequence[Mapping[str, object]] = (),
    ) -> Dict[str, object]:
        """``POST /jobs/complete``: land a lease's outcomes.

        Partial reports are fine (the rest of the lease expires and
        re-queues), and late reports from an expired lease still count for
        cells nobody finished first.
        """
        accepted = duplicates = unknown = 0
        with self._completed:
            now = self.clock()
            self._expire_leases(now)
            if worker is not None:
                self._workers[str(worker)] = now
            finished: List[JobRecord] = []
            for item in results:
                key = str(item.get("key"))
                metrics = item.get("metrics")
                record = self._records.get(key)
                if record is None or not isinstance(metrics, dict):
                    unknown += 1
                    continue
                if record.status in ("done", "failed"):
                    duplicates += 1
                    continue
                if record.lease is not None and record.lease != lease:
                    self._counters["late_completions"] += 1
                self._finish(record, metrics)
                finished.append(record)
                accepted += 1
            # One batched cache append for the whole reported chunk.
            self._store_finished(finished)
            for item in failures:
                key = str(item.get("key"))
                record = self._records.get(key)
                if record is None:
                    unknown += 1
                    continue
                if record.status in ("done", "failed"):
                    duplicates += 1
                    continue
                record.status = "failed"
                record.error = str(item.get("error") or "worker reported failure")
                record.lease = None
                self._counters["failed"] += 1
            if accepted or failures:
                self._completed.notify_all()
        return {
            "protocol": PROTOCOL_VERSION,
            "accepted": accepted,
            "duplicates": duplicates,
            "unknown": unknown,
        }

    def collect(
        self, keys: Sequence[str], timeout: float = DEFAULT_COLLECT_SECONDS
    ) -> Dict[str, object]:
        """``POST /jobs/collect``: long-poll for finished cells among ``keys``."""
        deadline = self.clock() + max(0.0, min(float(timeout), MAX_COLLECT_SECONDS))
        wanted = [str(key) for key in keys]
        with self._completed:
            while True:
                now = self.clock()
                self._expire_leases(now)
                results = []
                failures = []
                pending = 0
                for key in wanted:
                    record = self._records.get(key)
                    if record is None:
                        pending += 1
                    elif record.status == "done":
                        results.append({"key": key, "metrics": record.metrics})
                    elif record.status == "failed":
                        failures.append({"key": key, "error": record.error})
                    else:
                        pending += 1
                remaining = deadline - now
                if results or failures or remaining <= 0:
                    return {
                        "protocol": PROTOCOL_VERSION,
                        "results": results,
                        "failures": failures,
                        "pending": pending,
                    }
                # Bounded wait: a monotonic test clock never advances inside
                # wait(), so always wake at least every second to re-check.
                self._completed.wait(min(remaining, 1.0))

    def stats(self) -> Dict[str, object]:
        """``GET /stats``: the job-board counters and queue shape."""
        with self._lock:
            now = self.clock()
            self._expire_leases(now)
            by_status = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            for record in self._records.values():
                by_status[record.status] += 1
            return {
                "protocol": PROTOCOL_VERSION,
                "fingerprint": self.fingerprint,
                "jobs": by_status,
                "queue": len(self._queue),
                "workers": len(self._workers),
                "runs": len(self._runs),
                **dict(self._counters),
            }

    def health(self) -> Dict[str, object]:
        """``GET /health``: liveness probe."""
        return {"protocol": PROTOCOL_VERSION, "ok": True}

    # ------------------------------------------------------------------ #
    # Run API (``repro serve``)
    # ------------------------------------------------------------------ #

    def submit_run(
        self,
        settings_payload: Mapping[str, object],
        experiments: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """``POST /runs``: enumerate a whole evaluation and enqueue its cells.

        The coordinator enumerates with exactly the machinery of
        ``run_all_experiments`` (one shared batch, identical request
        resolution), so the document it later assembles is byte-identical
        to a local ``repro run-all --json`` at the same settings.
        """
        from repro.sim.experiments import _enumerate_spec_batch
        from repro.sim.specs import EXPERIMENTS, experiment

        settings = ExperimentSettings.from_dict(dict(settings_payload))
        if experiments is None:
            names = [name for name, spec in EXPERIMENTS.items() if spec.schema is not None]
        else:
            names = [experiment(str(name)).name for name in experiments]
        requests, jobs_by_spec, batch = _enumerate_spec_batch(settings, names)
        run = RunRecord(
            run_id=uuid.uuid4().hex[:12],
            settings=settings,
            names=names,
            requests=requests,
            jobs_by_spec=jobs_by_spec,
            batch=batch,
        )
        keyed = [(job, job.cache_key()) for job in batch]
        with self._completed:
            now = self.clock()
            self._expire_leases(now)
            cache_hits = self._probe_cache(keyed)
            for job, key in keyed:
                run.keys.append(key)
                self._enqueue(job, key, cache_hits)
            self._runs[run.run_id] = run
            self._completed.notify_all()
        return {
            "protocol": PROTOCOL_VERSION,
            "run": run.run_id,
            "experiments": names,
            "cells": len(batch),
        }

    def _run(self, run_id: str) -> RunRecord:
        run = self._runs.get(run_id)
        if run is None:
            raise NotFound(f"unknown run {run_id!r}")
        return run

    def run_status(self, run_id: str) -> Dict[str, object]:
        """``GET /runs/<id>``: per-state cell counts plus queue/lease counters.

        The ``counters`` block is scoped to the run's own cells: how deep
        the run still sits in the global queue, how many leases its cells
        have consumed, and how many of those were requeues (expired leases
        handed out again) -- the numbers a fleet-sized sweep is monitored
        by.
        """
        with self._lock:
            self._expire_leases(self.clock())
            run = self._run(run_id)
            counts = {"pending": 0, "leased": 0, "done": 0, "failed": 0}
            lease_attempts = 0
            requeues = 0
            queued = set(self._queue)
            queue_depth = 0
            for key in run.keys:
                record = self._records[key]
                counts[record.status] += 1
                lease_attempts += record.attempts
                requeues += max(0, record.attempts - 1)
                if key in queued:
                    queue_depth += 1
        state = "done" if counts["pending"] == 0 and counts["leased"] == 0 else "running"
        if counts["failed"]:
            state = "failed" if state == "done" else state
        return {
            "protocol": PROTOCOL_VERSION,
            "run": run_id,
            "state": state,
            "cells": len(run.keys),
            **counts,
            "counters": {
                "queue_depth": queue_depth,
                "lease_attempts": lease_attempts,
                "requeues": requeues,
            },
        }

    def run_document(self, run_id: str) -> Dict[str, object]:
        """``GET /runs/<id>/document``: the assembled results document.

        Refused with 409 while any cell is outstanding or failed -- a
        partial document would silently misrepresent the run.
        """
        from repro.sim.frames import frames_document
        from repro.sim.specs import EXPERIMENTS

        with self._lock:
            run = self._run(run_id)
            results: Dict[ExperimentJob, Metrics] = {}
            outstanding = 0
            failed = 0
            for key, job in zip(run.keys, run.batch):
                record = self._records[key]
                if record.status == "done":
                    results[job] = record.metrics or {}
                elif record.status == "failed":
                    failed += 1
                else:
                    outstanding += 1
        if outstanding or failed:
            raise Conflict(
                f"run {run_id} is incomplete: {outstanding} cells outstanding, "
                f"{failed} failed"
            )
        frames = {
            name: EXPERIMENTS[name].assemble_frame(
                run.requests[name], run.jobs_by_spec[name], results
            )
            for name in run.names
            if EXPERIMENTS[name].schema is not None
        }
        return frames_document(frames, settings=asdict(run.settings))


# ---------------------------------------------------------------------- #
# HTTP front end
# ---------------------------------------------------------------------- #


class _CoordinatorHandler(BaseHTTPRequestHandler):
    """Routes protocol endpoints onto the coordinator's methods."""

    #: Injected by :class:`CoordinatorServer`.
    coordinator: Coordinator
    quiet: bool = True

    # Workers hold keep-alive connections across long polls.
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if not self.quiet:
            super().log_message(format, *args)

    def _reply(self, status: int, payload: Mapping[str, object]) -> None:
        # Compact separators: response bodies carry whole result chunks,
        # and the default separators' whitespace is pure wire overhead.
        body = json.dumps(payload, separators=COMPACT_SEPARATORS).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _body(self) -> Dict[str, object]:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            return {}
        try:
            payload = json.loads(self.rfile.read(length).decode("utf-8"))
        except ValueError:
            raise ProtocolError("request body is not valid JSON", status=400) from None
        if not isinstance(payload, dict):
            raise ProtocolError("request body must be a JSON object", status=400)
        return payload

    def _dispatch(self, method: str) -> None:
        try:
            payload = self._handle(method)
        except ProtocolError as error:
            self._reply(error.status or 400, {"error": str(error)})
        except ExperimentError as error:
            self._reply(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - never kill the server thread
            self._reply(500, {"error": f"{type(error).__name__}: {error}"})
        else:
            self._reply(200, payload)

    def _handle(self, method: str) -> Dict[str, object]:
        coordinator = self.coordinator
        path = self.path.rstrip("/")
        if method == "GET":
            if path == "/health":
                return coordinator.health()
            if path == "/stats":
                return coordinator.stats()
            if path.startswith("/runs/"):
                parts = path.split("/")
                if len(parts) == 3:
                    return coordinator.run_status(parts[2])
                if len(parts) == 4 and parts[3] == "document":
                    return coordinator.run_document(parts[2])
            raise NotFound(f"no such endpoint: GET {self.path}")
        body = self._body()
        if path == "/jobs/submit":
            jobs = body.get("jobs")
            if not isinstance(jobs, list):
                raise ProtocolError("submit needs a 'jobs' list", status=400)
            return coordinator.submit(jobs, body.get("fingerprint"))
        if path == "/jobs/lease":
            max_jobs = body.get("max_jobs")
            return coordinator.lease(
                str(body.get("worker") or "anonymous"),
                body.get("fingerprint"),
                int(max_jobs) if max_jobs is not None else None,
            )
        if path == "/jobs/complete":
            results = body.get("results")
            failures = body.get("failures")
            return coordinator.complete(
                body.get("lease"),
                body.get("worker"),
                results if isinstance(results, list) else [],
                failures if isinstance(failures, list) else [],
            )
        if path == "/jobs/collect":
            timeout = body.get("timeout")
            return coordinator.collect(
                string_list(body.get("keys")),
                float(timeout) if timeout is not None else DEFAULT_COLLECT_SECONDS,
            )
        if path == "/runs":
            settings = body.get("settings")
            if not isinstance(settings, dict):
                raise ProtocolError("a run submission needs 'settings'", status=400)
            experiments = body.get("experiments")
            return coordinator.submit_run(
                settings,
                string_list(experiments) if experiments is not None else None,
            )
        raise NotFound(f"no such endpoint: POST {self.path}")

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")


class CoordinatorServer:
    """A coordinator bound to a listening :class:`ThreadingHTTPServer`.

    Usable blocking (``serve_forever``, the ``repro serve`` daemon) or in a
    background thread (``start``/``stop``, tests and the example script).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
        lease_seconds: float = DEFAULT_LEASE_SECONDS,
        coordinator: Optional[Coordinator] = None,
        quiet: bool = True,
    ) -> None:
        if coordinator is None:
            cache = make_result_cache(cache_dir) if cache_dir is not None else None
            coordinator = Coordinator(cache=cache, lease_seconds=lease_seconds)
        self.coordinator = coordinator
        handler = type(
            "BoundCoordinatorHandler",
            (_CoordinatorHandler,),
            {"coordinator": coordinator, "quiet": quiet},
        )
        self.server = ThreadingHTTPServer((host, port), handler)
        self.server.daemon_threads = True
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        host, port = self.server.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "CoordinatorServer":
        """Serve requests on a daemon thread (returns immediately)."""
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.1},
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve requests on the calling thread until interrupted."""
        self.server.serve_forever(poll_interval=0.1)

    def stop(self) -> None:
        """Shut the listener down and join the serving thread."""
        self.server.shutdown()
        self.server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
