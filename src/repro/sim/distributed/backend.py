"""The client-side ``distributed`` :class:`~repro.sim.runner.RunnerBackend`.

This is the piece that makes distribution invisible to the engine: the
runner hands the backend its pending cells exactly as it would hand them to
a process pool, and the backend ships their wire descriptions to the
coordinator, long-polls for completions, and yields ``(job, metrics)``
pairs in arrival order.  Caching, memoisation, stats and frame assembly all
stay on the client, untouched -- and because metrics survive the JSON round
trip byte-identically, so do the assembled documents.

The backend is registered under ``"distributed"`` in
:mod:`repro.sim.runner`; the coordinator URL comes from ``--coordinator``
on the CLI or the :data:`COORDINATOR_ENV` environment variable.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import ExperimentError
from repro.sim.distributed.protocol import CoordinatorClient
from repro.sim.jobs import ExperimentJob, code_fingerprint
from repro.sim.runner import JobExecutor, Metrics, RunnerBackend

#: Environment variable naming the coordinator URL (the registry factory
#: reads it; ``--coordinator`` on the CLI sets it for the process).
COORDINATOR_ENV = "REPRO_COORDINATOR"


def coordinator_from_env() -> str:
    """The coordinator URL from the environment, or a helpful refusal."""
    url = os.environ.get(COORDINATOR_ENV, "").strip()
    if not url:
        raise ExperimentError(
            "the distributed backend needs a coordinator URL: pass "
            f"--coordinator URL or set {COORDINATOR_ENV} "
            "(start one with `repro serve`)"
        )
    return url


class DistributedBackend(RunnerBackend):
    """Execute pending cells through a coordinator and its worker fleet."""

    name = "distributed"

    def __init__(self, coordinator: str, poll_seconds: float = 10.0) -> None:
        self.coordinator = coordinator
        self.poll_seconds = poll_seconds

    def execute(
        self,
        executor: JobExecutor,
        pending: Sequence[ExperimentJob],
        workers: int,
    ) -> Iterable[Tuple[ExperimentJob, Metrics]]:
        # ``executor`` is intentionally unused: remote workers run the cell
        # through their own (identical, fingerprint-checked) job registry.
        client = CoordinatorClient(self.coordinator)
        by_key: Dict[str, ExperimentJob] = {
            job.cache_key(): job for job in pending
        }
        client.submit_jobs(
            [job.to_wire() for job in pending], fingerprint=code_fingerprint()
        )
        awaiting = set(by_key)
        while awaiting:
            reply = client.collect(sorted(awaiting), timeout=self.poll_seconds)
            failures: List[str] = []
            for item in reply.get("failures") or []:
                key = str(item.get("key"))
                if key in awaiting:
                    awaiting.discard(key)
                    failures.append(
                        f"{by_key[key].label}: {item.get('error') or 'unknown error'}"
                    )
            if failures:
                raise ExperimentError(
                    "distributed workers failed "
                    f"{len(failures)} cell(s): " + "; ".join(sorted(failures))
                )
            for item in reply.get("results") or []:
                key = str(item.get("key"))
                metrics = item.get("metrics")
                if key in awaiting and isinstance(metrics, dict):
                    awaiting.discard(key)
                    yield by_key[key], metrics


__all__ = [
    "COORDINATOR_ENV",
    "DistributedBackend",
    "coordinator_from_env",
]
