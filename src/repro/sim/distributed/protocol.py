"""JSON-over-HTTP wire calls shared by coordinator, workers and clients.

The protocol is deliberately small: every call is a single HTTP request
with an optional JSON body and a JSON reply.  ``POST`` endpoints mutate the
job board, ``GET`` endpoints read it.  Errors come back as a JSON object
with an ``error`` field; the client raises them as :class:`ProtocolError`
carrying the HTTP status, so callers can distinguish a retryable outage
from a hard refusal (the ``409`` code-fingerprint mismatch).

Endpoints (all rooted at the coordinator URL):

=======================  ====================================================
``POST /jobs/submit``    enqueue wire-format cells (deduped by cache key)
``POST /jobs/lease``     lease a chunk of pending cells to a worker
``POST /jobs/complete``  report a lease's metrics (partial/late accepted)
``POST /jobs/collect``   long-poll for completed cells among given keys
``GET  /stats``          job-board counters (pending/leased/done/requeues...)
``GET  /health``         liveness probe
``POST /runs``           submit a whole evaluation run (``repro serve``)
``GET  /runs/<id>``      run status: total/done/failed cell counts
``GET  /runs/<id>/document``  the assembled results document (409 until done)
=======================  ====================================================
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import ExperimentError

#: Bumped on incompatible wire changes; both ends refuse a mismatch.
PROTOCOL_VERSION = 1

#: How long a leased chunk may stay unreported before it re-queues.
DEFAULT_LEASE_SECONDS = 60.0

#: Default long-poll window of ``POST /jobs/collect``.
DEFAULT_COLLECT_SECONDS = 10.0


class ProtocolError(ExperimentError):
    """An HTTP-level refusal from the coordinator (carries the status)."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


class CoordinatorClient:
    """Thin JSON-over-HTTP client for one coordinator URL."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def call(
        self,
        method: str,
        path: str,
        payload: Optional[Mapping[str, object]] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        """One request/reply round trip; JSON both ways."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            # Compact separators: submit/complete bodies carry whole job
            # chunks, and the default separators' whitespace is pure wire
            # overhead (~3% on wire-format cells, ~25% on result chunks).
            body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.url}{path}", data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout if timeout is None else timeout
            ) as response:
                return self._decode(response.read(), response.status)
        except urllib.error.HTTPError as error:
            message = f"coordinator refused {method} {path}: HTTP {error.code}"
            try:
                detail = json.loads(error.read().decode("utf-8"))
                if isinstance(detail, dict) and detail.get("error"):
                    message = str(detail["error"])
            except (ValueError, OSError):
                pass
            raise ProtocolError(message, status=error.code) from None
        except (urllib.error.URLError, OSError) as error:
            raise ProtocolError(
                f"cannot reach coordinator at {self.url}: {error}"
            ) from None

    @staticmethod
    def _decode(raw: bytes, status: int) -> Dict[str, object]:
        try:
            payload = json.loads(raw.decode("utf-8"))
        except ValueError:
            raise ProtocolError(
                f"coordinator sent a non-JSON reply (HTTP {status})", status=status
            ) from None
        if not isinstance(payload, dict):
            raise ProtocolError(
                f"coordinator sent a non-object reply (HTTP {status})", status=status
            )
        return payload

    # ------------------------------------------------------------------ #
    # Job-board calls
    # ------------------------------------------------------------------ #

    def submit_jobs(
        self, payloads: Sequence[Mapping[str, object]], fingerprint: str
    ) -> Dict[str, object]:
        """Enqueue wire-format cells; returns accepted/cached/shared counts."""
        return self.call(
            "POST",
            "/jobs/submit",
            {
                "protocol": PROTOCOL_VERSION,
                "fingerprint": fingerprint,
                "jobs": list(payloads),
            },
        )

    def lease(
        self, worker: str, fingerprint: str, max_jobs: Optional[int] = None
    ) -> Dict[str, object]:
        """Lease a chunk of pending cells (empty ``jobs`` when idle)."""
        return self.call(
            "POST",
            "/jobs/lease",
            {
                "protocol": PROTOCOL_VERSION,
                "fingerprint": fingerprint,
                "worker": worker,
                "max_jobs": max_jobs,
            },
        )

    def complete(
        self,
        lease: str,
        worker: str,
        results: Sequence[Mapping[str, object]],
        failures: Sequence[Mapping[str, object]] = (),
    ) -> Dict[str, object]:
        """Report a lease's outcomes (``results``/``failures`` by key)."""
        return self.call(
            "POST",
            "/jobs/complete",
            {
                "protocol": PROTOCOL_VERSION,
                "lease": lease,
                "worker": worker,
                "results": list(results),
                "failures": list(failures),
            },
        )

    def collect(
        self, keys: Sequence[str], timeout: float = DEFAULT_COLLECT_SECONDS
    ) -> Dict[str, object]:
        """Long-poll for completed cells among ``keys``."""
        return self.call(
            "POST",
            "/jobs/collect",
            {"protocol": PROTOCOL_VERSION, "keys": list(keys), "timeout": timeout},
            # The HTTP timeout must outlive the server-side long poll.
            timeout=timeout + 30.0,
        )

    def stats(self) -> Dict[str, object]:
        """The coordinator's job-board counters."""
        return self.call("GET", "/stats")

    def health(self) -> Dict[str, object]:
        """Liveness probe."""
        return self.call("GET", "/health")

    # ------------------------------------------------------------------ #
    # Run API (``repro serve``)
    # ------------------------------------------------------------------ #

    def submit_run(
        self,
        settings: Mapping[str, object],
        experiments: Optional[Sequence[str]] = None,
    ) -> Dict[str, object]:
        """Submit a whole evaluation run; returns its ``run`` id."""
        return self.call(
            "POST",
            "/runs",
            {
                "protocol": PROTOCOL_VERSION,
                "settings": dict(settings),
                "experiments": list(experiments) if experiments is not None else None,
            },
        )

    def run_status(self, run_id: str) -> Dict[str, object]:
        """Cell counts of one run (``state`` is ``running`` or ``done``)."""
        return self.call("GET", f"/runs/{run_id}")

    def run_document(self, run_id: str) -> Dict[str, object]:
        """The run's assembled results document (409 until every cell is done)."""
        return self.call("GET", f"/runs/{run_id}/document")


def job_result(key: str, metrics: Mapping[str, object]) -> Dict[str, object]:
    """One completed cell as shipped in ``POST /jobs/complete``."""
    return {"key": key, "metrics": dict(metrics)}


def job_failure(key: str, error: str) -> Dict[str, object]:
    """One failed cell as shipped in ``POST /jobs/complete``."""
    return {"key": key, "error": error}


def string_list(value: object) -> List[str]:
    """Coerce a JSON payload field into a list of strings (defensively)."""
    if not isinstance(value, list):
        return []
    return [str(item) for item in value]
