"""The simulation timeline: ordered mid-run events that reshape the machine.

The paper's central claim is that a mixed-mode multicore *adapts at
runtime* -- cores are coupled into DMR pairs or released for performance as
demand and faults dictate.  A :class:`Timeline` is the declarative
description of such a dynamic scenario: an ordered sequence of
:class:`TimelineEvent` values, each naming an absolute simulation cycle
(warmup included) at which the machine changes shape.  The simulator applies
every event exactly at its cycle by clamping the surrounding quantum at the
event boundary, so two events inside what would have been one quantum split
it and an event at cycle 0 reshapes the machine before the first quantum.

Event kinds:

* :class:`CoreFailed` / :class:`CoreRepaired` -- a physical core suffers a
  permanent fault and is retired from the scheduling pool (its DMR partner,
  if any, is re-paired by the next quantum's mapping plan), or returns after
  repair;
* :class:`VmArrived` / :class:`VmDeparted` -- a guest VM (built with
  ``present_at_start=False``) is admitted to, or drained from, the gang
  schedule -- the consolidation-server churn scenario;
* :class:`PolicyChanged` -- privileged software hot-swaps the VCPU-to-core
  mapping policy (e.g. ``mmm-ipc`` to ``mmm-tp``);
* :class:`ReliabilityModeChanged` -- privileged software rewrites a whole
  VM's per-VCPU reliability registers;
* :class:`FaultRateBurst` -- the machine's fault-injection rates are scaled
  by a factor for a bounded number of cycles (a particle-flux burst).

Timelines are plain values: they serialize to a canonical JSON string
(:meth:`Timeline.to_json`) that the experiment engine folds into the job
identity, so a cell's cache key changes whenever its event schedule does and
cached results stay byte-identical across backends and job chunking.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Dict, Iterable, List, Tuple, Type

from repro.errors import SimulationError

__all__ = [
    "Timeline",
    "TimelineEvent",
    "CoreFailed",
    "CoreRepaired",
    "VmArrived",
    "VmDeparted",
    "PolicyChanged",
    "ReliabilityModeChanged",
    "FaultRateBurst",
    "EVENT_KINDS",
]


@dataclass(frozen=True)
class TimelineEvent:
    """Base of every timeline event: something happens at an absolute cycle.

    ``cycle`` counts from the very start of the run (warmup included), so a
    scenario can reshape the machine before measurement begins.  Concrete
    events set :attr:`KIND`, their serialization tag.
    """

    cycle: int

    #: Serialization tag; also the key of the per-kind counters reported in
    #: :attr:`repro.sim.results.SimulationResult.timeline_stats`.
    KIND = "abstract"

    def validate(self) -> "TimelineEvent":
        """Check the event is well formed; return ``self``."""
        if self.cycle < 0:
            raise SimulationError(f"{self.KIND} event scheduled before cycle 0")
        return self

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe description (``kind`` plus the event's own fields)."""
        payload: Dict[str, object] = {"kind": self.KIND}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class CoreFailed(TimelineEvent):
    """A permanent fault retires one physical core from the pool."""

    core_id: int = 0
    KIND = "core-failed"


@dataclass(frozen=True)
class CoreRepaired(TimelineEvent):
    """A previously failed core returns to the scheduling pool."""

    core_id: int = 0
    KIND = "core-repaired"


@dataclass(frozen=True)
class VmArrived(TimelineEvent):
    """A deferred guest VM is admitted to the gang schedule.

    The VM must have been built into the machine with
    ``present_at_start=False``; the event names it by its spec name.
    """

    vm_name: str = ""
    KIND = "vm-arrived"


@dataclass(frozen=True)
class VmDeparted(TimelineEvent):
    """An active guest VM is drained from the gang schedule."""

    vm_name: str = ""
    KIND = "vm-departed"


@dataclass(frozen=True)
class PolicyChanged(TimelineEvent):
    """Privileged software swaps the VCPU-to-core mapping policy."""

    policy: str = ""
    KIND = "policy-changed"


@dataclass(frozen=True)
class ReliabilityModeChanged(TimelineEvent):
    """One VM's per-VCPU reliability registers are rewritten.

    ``mode`` is a :class:`repro.virt.vcpu.ReliabilityMode` member name
    (``RELIABLE``, ``PERFORMANCE``, ``PERFORMANCE_USER_ONLY``).
    """

    vm_name: str = ""
    mode: str = "RELIABLE"
    KIND = "reliability-mode-changed"


@dataclass(frozen=True)
class FaultRateBurst(TimelineEvent):
    """Scale the machine's fault-injection rates for a bounded window.

    The injector's rates are multiplied by ``scale`` at :attr:`cycle` and
    restored ``duration_cycles`` later.  A burst arriving while another is
    active replaces it (the rates are always ``base * scale`` of the most
    recent burst).  On a machine without a fault injector the event is
    counted but has no effect.
    """

    scale: float = 1.0
    duration_cycles: int = 0
    KIND = "fault-rate-burst"

    def validate(self) -> "FaultRateBurst":
        super().validate()
        if self.scale <= 0.0:
            raise SimulationError("fault-rate-burst scale must be positive")
        if self.duration_cycles <= 0:
            raise SimulationError("fault-rate-burst duration must be positive")
        return self


#: Serialization tag to event class, for :meth:`Timeline.from_json`.
EVENT_KINDS: Dict[str, Type[TimelineEvent]] = {
    cls.KIND: cls
    for cls in (
        CoreFailed,
        CoreRepaired,
        VmArrived,
        VmDeparted,
        PolicyChanged,
        ReliabilityModeChanged,
        FaultRateBurst,
    )
}


@dataclass(frozen=True)
class Timeline:
    """An ordered schedule of mid-run machine reshapes.

    Events are processed in cycle order; events sharing a cycle apply in the
    order given, which makes every scenario fully deterministic.  The event
    tuple is normalised at construction (stably sorted by cycle), so two
    timelines describing the same schedule compare equal and serialize to
    the same canonical JSON -- which is what the job cache key digests.
    """

    events: Tuple[TimelineEvent, ...] = ()

    def __post_init__(self) -> None:
        # Stable sort: same-cycle events keep their given relative order.
        object.__setattr__(
            self,
            "events",
            tuple(sorted(self.events, key=lambda event: event.cycle)),
        )

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def validate(self) -> "Timeline":
        """Validate every event; return ``self``."""
        for event in self.events:
            event.validate()
        return self

    def sorted_events(self) -> List[TimelineEvent]:
        """The events in processing order (by cycle, ties in given order)."""
        return list(self.events)

    @classmethod
    def of(cls, *events: TimelineEvent) -> "Timeline":
        """Build (and validate) a timeline from the given events."""
        return cls(events=tuple(events)).validate()

    # ------------------------------------------------------------------ #
    # Canonical serialization (what the job identity digests)
    # ------------------------------------------------------------------ #

    def to_dicts(self) -> List[Dict[str, object]]:
        """Every event as a JSON-safe dict, in the timeline's order."""
        return [event.to_dict() for event in self.events]

    def to_json(self) -> str:
        """Canonical JSON form: compact separators, sorted keys.

        Two timelines describing the same schedule serialize identically, so
        the experiment engine can fold this string into a job's cache key.
        """
        return json.dumps(self.to_dicts(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "Timeline":
        """Parse a timeline serialized by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise SimulationError(f"malformed timeline JSON: {exc}") from None
        if not isinstance(payload, list):
            raise SimulationError("a serialized timeline must be a JSON list")
        return cls.from_dicts(payload)

    @classmethod
    def from_dicts(cls, payload: Iterable[Dict[str, object]]) -> "Timeline":
        """Rebuild a timeline from :meth:`to_dicts` output."""
        events: List[TimelineEvent] = []
        for entry in payload:
            if not isinstance(entry, dict) or "kind" not in entry:
                raise SimulationError(f"malformed timeline event: {entry!r}")
            kind = entry["kind"]
            try:
                event_class = EVENT_KINDS[kind]
            except KeyError:
                known = ", ".join(sorted(EVENT_KINDS))
                raise SimulationError(
                    f"unknown timeline event kind {kind!r} (known kinds: {known})"
                ) from None
            names = {f.name for f in fields(event_class)}
            given = set(entry) - {"kind"}
            # Strict field checking: a misspelled or omitted field must not
            # silently fall back to a default and run a different scenario.
            unknown = sorted(given - names)
            if unknown:
                raise SimulationError(
                    f"{kind} event has unknown field(s) {', '.join(unknown)} "
                    f"(expected: {', '.join(sorted(names))})"
                )
            missing = sorted(names - given)
            if missing:
                raise SimulationError(
                    f"{kind} event is missing field(s) {', '.join(missing)}"
                )
            events.append(event_class(**{name: entry[name] for name in names}))
        return cls(events=tuple(events)).validate()
