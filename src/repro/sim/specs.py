"""Declarative experiment specs and the central ``EXPERIMENTS`` registry.

Every evaluation of the reproduction -- each paper figure/table and the
fault-injection campaigns -- is described by one :class:`ExperimentSpec`: a
plain-value object naming the experiment, the :class:`ParameterGrid` of axes
it sweeps (workload x configuration x seed, ...), how its cells are
enumerated as :class:`~repro.sim.jobs.ExperimentJob` values, and -- since
the frame redesign -- a :class:`~repro.sim.frames.MetricSchema` declaring
its key axes and metric columns.  Running a spec returns a typed
:class:`~repro.sim.frames.ResultFrame`; the generic assembler of
:mod:`repro.sim.frames` folds the runner's ``{job: metrics}`` output into
the frame, aggregating over seeds in one place, and ``to_table`` /
``to_json`` / ``to_csv`` are *generated* from the schema.

Specs are registered in the module-level :data:`EXPERIMENTS` registry, which
is the single source of truth the rest of the system iterates:

* the ``run_*`` entry points of :mod:`repro.sim.experiments` are thin
  wrappers over :meth:`ExperimentSpec.run` that re-shape the frame into the
  legacy result dataclasses (views over the frame);
* ``run_all_experiments`` enumerates every registered spec's cells into one
  job batch and returns one frame per spec;
* the CLI generates one subcommand per spec -- flags, help text and
  defaults all come from the spec's metadata (:class:`SpecOption`), so a
  new experiment shows up in ``repro <name>``, ``repro list``, ``repro
  export`` and ``repro diff`` without touching :mod:`repro.cli`.

Adding a new scenario is therefore a ~30-line spec: declare a grid, an
enumerator mapping grid points to jobs (reusing a registered job kind, or
registering a new one via :func:`repro.sim.jobs.register_job_kind`), a
:class:`MetricSchema`, and call :func:`register_experiment`.  See
``examples/custom_experiment.py`` for a worked example.  Specs without a
schema remain supported: their ``assemble`` hook runs instead and their
result renders through the ``tables`` hook.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.config.system import PabLookupMode
from repro.errors import ExperimentError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    SWEEP_CONFIGURATIONS,
    TRIAL_SITES,
)
from repro.faults.cells import (
    DEFAULT_TRIALS_PER_CELL,
    assemble_campaign_reports,
    fault_campaign_jobs,
)
from repro.sim.experiments import (
    ABLATION_VARIANTS,
    FAULT_COVERAGE_TITLE,
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    ExperimentSettings,
    churn_jobs,
    degradation_jobs,
    figure5_jobs,
    figure6_jobs,
    pab_jobs,
    switch_frequency_jobs,
    switch_overhead_jobs,
    window_ablation_jobs,
)
from repro.sim.fleet.cells import fleet_jobs, fleet_samples, fleet_topology
from repro.sim.fleet.traffic import SCENARIO_NAMES
from repro.sim.frames import FrameView, MetricColumn, MetricSchema, ResultFrame
from repro.sim.jobs import ExperimentJob
from repro.sim.runner import ExperimentRunner, Metrics, default_runner

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ParameterGrid",
    "SpecOption",
    "SpecRequest",
    "SpecRun",
    "experiment",
    "experiment_names",
    "register_experiment",
    "jsonify",
    "parse_count_list",
    "parse_nonnegative_int",
    "parse_positive_int",
    "parse_rate_list",
    "parse_seed_list",
]

JobResults = Mapping[ExperimentJob, Metrics]

#: One raw frame sample: a key tuple (schema key order) plus a mapping of
#: metric samples contributed at that coordinate.
FrameSample = Tuple[Tuple[object, ...], Mapping[str, object]]


# ===================================================================== #
# Parameter grids
# ===================================================================== #


@dataclass(frozen=True)
class ParameterGrid:
    """The cartesian axes one experiment sweeps, in nesting order.

    Purely descriptive -- the grid names the cell space (its size equals the
    number of enumerated jobs), which is what ``repro list`` prints and what
    :meth:`ExperimentSpec.to_json` records alongside the results.
    """

    #: Ordered (axis name, axis values) pairs; the last axis varies fastest.
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    @classmethod
    def of(cls, *axes: Tuple[str, Sequence[object]]) -> "ParameterGrid":
        """Build a grid from (name, values) pairs, normalising to tuples."""
        return cls(axes=tuple((name, tuple(values)) for name, values in axes))

    def names(self) -> Tuple[str, ...]:
        """The axis names, outermost first."""
        return tuple(name for name, _ in self.axes)

    def axis(self, name: str) -> Tuple[object, ...]:
        """The values of one axis."""
        for axis_name, values in self.axes:
            if axis_name == name:
                return values
        raise ExperimentError(f"grid has no axis named {name!r}")

    def size(self) -> int:
        """Number of grid points (cells)."""
        return math.prod(len(values) for _, values in self.axes) if self.axes else 0

    def points(self) -> Iterator[Dict[str, object]]:
        """Every grid point as an ``{axis: value}`` dict, row-major."""

        def expand(index: int, point: Dict[str, object]) -> Iterator[Dict[str, object]]:
            if index == len(self.axes):
                yield dict(point)
                return
            name, values = self.axes[index]
            for value in values:
                point[name] = value
                yield from expand(index + 1, point)

        yield from expand(0, {})

    def describe(self) -> str:
        """Compact human-readable shape, e.g. ``workload(6) x seed(10)``."""
        if not self.axes:
            return "(empty)"
        return " x ".join(f"{name}({len(values)})" for name, values in self.axes)


# ===================================================================== #
# Option metadata (drives the auto-generated CLI flags)
# ===================================================================== #


def parse_positive_int(value: str) -> int:
    """Argparse type for counts that must be at least 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return number


def parse_nonnegative_int(value: str) -> int:
    """Argparse type for counts where 0 is meaningful (e.g. no-churn)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return number


def parse_seed_list(value: str) -> Tuple[int, ...]:
    """``--seeds`` accepts a comma list ('0,1,2') or a count N (seeds 0..N-1)."""
    try:
        if "," in value:
            # dict.fromkeys: drop duplicate seeds while keeping their order
            # (a duplicated seed would double-count its cells in a sweep).
            seeds = tuple(
                dict.fromkeys(int(part) for part in value.split(",") if part.strip())
            )
        else:
            seeds = tuple(range(int(value)))
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated seed list like '0,1,2' or a count like '5'"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError("needs at least one seed")
    return seeds


def parse_count_list(value: str) -> Tuple[int, ...]:
    """A comma list of non-negative integers (e.g. ``--failures 0,2,4``)."""
    try:
        counts = tuple(
            dict.fromkeys(int(part) for part in value.split(",") if part.strip())
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of counts like '0,2,4'"
        ) from None
    if not counts or any(count < 0 for count in counts):
        raise argparse.ArgumentTypeError("counts must be non-negative integers")
    return counts


def parse_rate_list(value: str) -> Tuple[float, ...]:
    """``--sweep-rates`` accepts a comma list of fault-rate scales in (0, 1]."""
    try:
        rates = tuple(float(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of rates like '0.25,0.5,1.0'"
        ) from None
    # `not (0 < rate <= 1)` rather than `rate <= 0 or rate > 1`: the former
    # also rejects NaN, for which every comparison is False.
    if not rates or any(not (0.0 < rate <= 1.0) for rate in rates):
        raise argparse.ArgumentTypeError("rates must lie in (0, 1]")
    return rates


@dataclass(frozen=True)
class SpecOption:
    """One experiment-specific CLI flag, declared as spec metadata.

    The CLI materialises every option as an ``argparse`` argument; the
    parsed values reach the spec through :attr:`SpecRequest.options`.
    """

    #: Option name and ``argparse`` destination (underscored).
    name: str
    #: Command-line flag (dashed), e.g. ``--sweep-rates``.
    flag: str
    help: str = ""
    default: object = None
    #: Parser for the flag's string value; ignored for boolean flags.
    parse: Optional[Callable[[str], object]] = None
    metavar: Optional[str] = None
    #: ``True`` for a ``store_true`` switch.
    is_flag: bool = False


# ===================================================================== #
# Requests and specs
# ===================================================================== #


@dataclass(frozen=True)
class SpecRequest:
    """One resolved ask of a spec: settings plus experiment-specific options.

    Built by :meth:`ExperimentSpec.request` (which applies the spec's
    workload limit and single-seed policy), and passed verbatim to the
    spec's ``grid`` / ``enumerate_jobs`` / ``schema`` hooks.
    """

    settings: ExperimentSettings
    options: Mapping[str, object] = field(default_factory=dict)

    def option(self, name: str, default: object = None) -> object:
        """Read one option, falling back to ``default`` when unset/None."""
        value = self.options.get(name)
        return default if value is None else value


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative, re-runnable description of one experiment.

    The hooks receive a resolved :class:`SpecRequest`; everything else --
    running through a :class:`~repro.sim.runner.ExperimentRunner`, generic
    frame assembly, schema-generated table / JSON / CSV rendering -- is
    provided by the spec machinery.
    """

    #: Registry key, CLI subcommand and JSON ``experiment`` field.
    name: str
    #: One-line summary (the CLI subcommand's help text).
    title: str
    #: Longer prose for ``repro list``/docs; defaults to the title.
    description: str = ""
    #: Spec family (``simulation``, ``measurement``, ``faults``) -- how the
    #: cells execute, used for grouping in ``repro list`` and the tests.
    family: str = "simulation"
    #: The swept axes, given the resolved request.
    grid: Callable[[SpecRequest], ParameterGrid] = lambda request: ParameterGrid(())
    #: The request's cells as picklable engine jobs.
    enumerate_jobs: Callable[[SpecRequest], List[ExperimentJob]] = (
        lambda request: []
    )
    #: The declared result shape: key axes plus typed metric columns.
    #: With a schema, running the spec returns a :class:`ResultFrame`
    #: assembled by the generic fold of :mod:`repro.sim.frames`.
    schema: Optional[Callable[[SpecRequest], MetricSchema]] = None
    #: Optional override of the raw samples fed to the frame assembler;
    #: the default maps each job's key coordinates straight off the job and
    #: feeds its whole metrics dict.  Needed when samples must be computed
    #: *across* cells first (the fault campaign derives per-seed coverage
    #: from many trial-chunk cells).
    cell_samples: Optional[
        Callable[[SpecRequest, Sequence[ExperimentJob], JobResults], Iterable[FrameSample]]
    ] = None
    #: Legacy assembly hook for specs *without* a schema: fold the runner's
    #: ``{job: metrics}`` output into an arbitrary result object.
    assemble: Callable[[SpecRequest, Sequence[ExperimentJob], JobResults], object] = (
        lambda request, jobs, results: None
    )
    #: Legacy rendering hook for specs without a schema.
    tables: Callable[[object], List[str]] = lambda result: []
    #: Experiment-specific CLI flags.
    options: Tuple[SpecOption, ...] = ()
    #: ``False`` for single-seed measurements: the request keeps only the
    #: first seed, and the CLI announces dropped seeds instead of silently
    #: ignoring them.
    multi_seed: bool = True
    #: When set, a request that did not explicitly choose workloads is
    #: limited to the first N (the ablation runs two by default).
    workload_limit: Optional[int] = None
    #: Whether the experiment sweeps the paper workloads at all (the fault
    #: campaigns sweep fault sites instead; the CLI then offers no
    #: ``--workloads``/``--quick`` flags).
    takes_workloads: bool = True
    #: ``run_all_experiments`` skip group (``switching``, ``ablation``,
    #: ``faults``) or ``None`` for the always-on core experiments.
    run_all_group: Optional[str] = None
    #: Names of the legacy ``run_*`` entry points this spec subsumes.
    legacy_entry_points: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Request resolution and execution
    # ------------------------------------------------------------------ #

    def request(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        explicit_workloads: bool = False,
        **options: object,
    ) -> SpecRequest:
        """Resolve settings + options into the request the hooks consume."""
        settings = settings or ExperimentSettings()
        if (
            self.workload_limit is not None
            and not explicit_workloads
            and len(settings.workloads) > self.workload_limit
        ):
            settings = settings.with_workloads(
                settings.workloads[: self.workload_limit]
            )
        if not self.multi_seed and len(settings.seeds) > 1:
            settings = settings.with_seeds(settings.seeds[:1])
        return SpecRequest(settings=settings, options=options)

    def execute(
        self,
        settings: Optional[ExperimentSettings] = None,
        runner: Optional[ExperimentRunner] = None,
        request: Optional[SpecRequest] = None,
        **options: object,
    ) -> "SpecRun":
        """Enumerate and execute this experiment, keeping the raw results.

        Either pass a pre-resolved ``request`` or let ``settings`` and
        keyword options be resolved via :meth:`request`.  The returned
        :class:`SpecRun` exposes the raw ``{job: metrics}`` mapping as well
        as the assembled :meth:`~SpecRun.frame` -- the legacy wrappers use
        it to build their dataclass views without re-running anything.
        """
        if request is None:
            request = self.request(settings, **options)
        runner = runner or default_runner()
        with runner.stats.phase("enumerate"):
            jobs = self.enumerate_jobs(request)
        results = runner.run_jobs(jobs)
        return SpecRun(
            spec=self, request=request, jobs=jobs, results=results, runner=runner
        )

    def run(
        self,
        settings: Optional[ExperimentSettings] = None,
        runner: Optional[ExperimentRunner] = None,
        request: Optional[SpecRequest] = None,
        **options: object,
    ) -> object:
        """Run this experiment and return its result.

        Specs with a schema return the assembled :class:`ResultFrame`;
        schema-less specs return whatever their ``assemble`` hook builds.
        """
        return self.execute(settings, runner=runner, request=request, **options).result()

    # ------------------------------------------------------------------ #
    # Frame assembly (generic, schema-driven)
    # ------------------------------------------------------------------ #

    def metric_schema(self, request: SpecRequest) -> MetricSchema:
        """The resolved schema of one request."""
        if self.schema is None:
            raise ExperimentError(
                f"experiment {self.name!r} declares no MetricSchema"
            )
        return self.schema(request)

    def samples(
        self,
        request: SpecRequest,
        jobs: Sequence[ExperimentJob],
        results: JobResults,
    ) -> Iterable[FrameSample]:
        """The raw ``(key, values)`` samples fed to the frame assembler."""
        if self.cell_samples is not None:
            return self.cell_samples(request, jobs, results)
        schema = self.metric_schema(request)
        return (
            (
                tuple(_job_axis_value(job, axis) for axis in schema.keys),
                results[job],
            )
            for job in jobs
        )

    def assemble_frame(
        self,
        request: SpecRequest,
        jobs: Sequence[ExperimentJob],
        results: JobResults,
    ) -> ResultFrame:
        """Fold the runner's output into this spec's :class:`ResultFrame`."""
        return ResultFrame.assemble(
            self.metric_schema(request),
            self.samples(request, jobs, results),
            name=self.name,
            title=self.title,
            fidelity=request.settings.fidelity,
        )

    # ------------------------------------------------------------------ #
    # Uniform result rendering (generated from the schema)
    # ------------------------------------------------------------------ #

    def to_table(self, result: object) -> str:
        """Every table of a result, joined the way the CLI prints them."""
        if isinstance(result, ResultFrame):
            return result.to_table()
        return "\n\n".join(self.tables(result))

    def to_json(self, result: object) -> Dict[str, object]:
        """A JSON-safe record of a result (uniform across specs)."""
        return {
            "experiment": self.name,
            "title": self.title,
            "family": self.family,
            "result": result.to_json()
            if isinstance(result, ResultFrame)
            else jsonify(result),
        }

    def to_csv(self, result: object) -> str:
        """CSV export generated from the schema (frames only)."""
        if not isinstance(result, ResultFrame):
            raise ExperimentError(
                f"experiment {self.name!r} produced no frame to export as CSV"
            )
        return result.to_csv()


@dataclass
class SpecRun:
    """One executed spec request: the raw results plus the assembled frame."""

    spec: ExperimentSpec
    request: SpecRequest
    jobs: List[ExperimentJob]
    results: JobResults
    #: The runner that executed the request; set so lazy frame assembly can
    #: charge its time to the runner's ``assemble`` phase.
    runner: Optional[ExperimentRunner] = None
    _frame: Optional[ResultFrame] = None

    def frame(self) -> ResultFrame:
        """The schema-assembled frame (computed once per run)."""
        if self._frame is None:
            if self.runner is not None:
                with self.runner.stats.phase("assemble"):
                    self._frame = self.spec.assemble_frame(
                        self.request, self.jobs, self.results
                    )
            else:
                self._frame = self.spec.assemble_frame(
                    self.request, self.jobs, self.results
                )
        return self._frame

    def result(self) -> object:
        """The spec's result: its frame, or the legacy ``assemble`` output."""
        if self.spec.schema is not None:
            return self.frame()
        return self.spec.assemble(self.request, self.jobs, self.results)


def _job_axis_value(job: ExperimentJob, axis: str) -> object:
    """Default mapping from a schema key axis to a job's coordinate.

    ``workload`` and ``seed`` are job fields; any other axis is looked up
    in the job's ``params`` payload and falls back to the ``variant``
    label (the configuration axis of the simulation families).
    """
    if axis == "workload":
        return job.workload
    if axis == "seed":
        return job.seed
    value = job.param(axis)
    if value is not None:
        return value
    return job.variant


def jsonify(value: object) -> object:
    """Recursively convert any spec result into JSON-serializable values.

    Dataclasses become field dicts (honouring a ``to_dict`` method when one
    exists), enums their names, mappings get string keys; anything else
    unknown falls back to ``str``.
    """
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict) and not isinstance(value, type):
        return jsonify(to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ===================================================================== #
# The registry
# ===================================================================== #

#: Every registered experiment spec, in registration (= presentation) order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec, *, replace: bool = False) -> ExperimentSpec:
    """Add a spec to :data:`EXPERIMENTS` (rejecting silent name collisions)."""
    if spec.name in EXPERIMENTS and not replace:
        raise ExperimentError(f"experiment {spec.name!r} is already registered")
    EXPERIMENTS[spec.name] = spec
    return spec


def experiment(name: str) -> ExperimentSpec:
    """Look up one registered spec by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS) or "none"
        raise ExperimentError(
            f"unknown experiment {name!r} (registered: {known})"
        ) from None


def experiment_names() -> Tuple[str, ...]:
    """The registered experiment names, in presentation order."""
    return tuple(EXPERIMENTS)


# ===================================================================== #
# The reproduction's specs
# ===================================================================== #


def _seed_grid(request: SpecRequest, configurations: Sequence[object]) -> ParameterGrid:
    return ParameterGrid.of(
        ("workload", request.settings.workloads),
        ("configuration", configurations),
        ("seed", request.settings.seeds),
    )


def _ipc_metric(name: str, label: str = "") -> MetricColumn:
    return MetricColumn(name, unit="instr/cycle", label=label)


_FIGURE5_SCHEMA = MetricSchema(
    keys=("workload", "configuration"),
    metrics=(
        _ipc_metric("user_ipc", "user IPC"),
        _ipc_metric("throughput"),
    ),
    views=(
        FrameView(
            title="Figure 5(a): per-thread user IPC (normalised to No DMR 2X)",
            metrics=("user_ipc",),
            pivot="configuration",
            normalize_to="no-dmr-2x",
        ),
        FrameView(
            title="Figure 5(b): overall throughput (normalised to No DMR 2X)",
            metrics=("throughput",),
            pivot="configuration",
            normalize_to="no-dmr-2x",
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="figure5",
        title="Figure 5: DMR overhead (IPC and throughput)",
        description=(
            "Per-thread user IPC and overall throughput of No DMR 2X, "
            "No DMR and Reunion-style DMR."
        ),
        grid=lambda request: _seed_grid(request, FIGURE5_CONFIGS),
        enumerate_jobs=lambda request: figure5_jobs(request.settings),
        schema=lambda request: _FIGURE5_SCHEMA,
        legacy_entry_points=("run_dmr_overhead_experiment",),
    )
)


_FIGURE6_SCHEMA = MetricSchema(
    keys=("workload", "configuration"),
    metrics=(
        _ipc_metric("reliable_ipc", "reliable"),
        _ipc_metric("performance_ipc", "performance"),
        _ipc_metric("reliable_throughput"),
        _ipc_metric("performance_throughput"),
        _ipc_metric("overall_throughput"),
    ),
    views=(
        FrameView(
            title="Figure 6(a): per-thread user IPC (normalised to DMR Base)",
            metrics=("reliable_ipc", "performance_ipc"),
            series_labels=("reliable", "performance"),
            series_column="vm",
            pivot="configuration",
            normalize_to="dmr-base",
        ),
        FrameView(
            title="Figure 6(b): throughput (normalised to DMR Base)",
            metrics=("performance_throughput", "overall_throughput"),
            series_labels=("performance-vm", "overall"),
            series_column="series",
            pivot="configuration",
            normalize_to="dmr-base",
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="figure6",
        title="Figure 6: mixed-mode performance",
        description=(
            "Per-VM IPC and throughput of the consolidated server under "
            "DMR Base, MMM-IPC and MMM-TP."
        ),
        grid=lambda request: _seed_grid(
            request, request.option("configurations", FIGURE6_CONFIGS)
        ),
        enumerate_jobs=lambda request: figure6_jobs(
            request.settings, request.option("configurations", FIGURE6_CONFIGS)
        ),
        schema=lambda request: _FIGURE6_SCHEMA,
        legacy_entry_points=("run_mixed_mode_experiment",),
    )
)


_PAB_SCHEMA = MetricSchema(
    keys=("workload", "lookup"),
    metrics=(
        MetricColumn("performance_ipc", unit="instr/cycle", aggregate="mean"),
        MetricColumn("reliable_ipc", unit="instr/cycle", aggregate="mean"),
    ),
    views=(
        FrameView(
            title="Effect of a 2-cycle serial PAB lookup (MMM-TP, performance VM)",
            metrics=("performance_ipc", "reliable_ipc"),
            series_labels=("performance", "reliable"),
            series_column="vm",
            pivot="lookup",
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="pab",
        title="Section 5.2: serial vs parallel PAB lookup",
        description="IPC sensitivity of the performance VM to a serialised PAB lookup.",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("lookup", tuple(mode.value for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL))),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: pab_jobs(request.settings),
        schema=lambda request: _PAB_SCHEMA,
        legacy_entry_points=("run_pab_latency_study",),
    )
)


def _tag_fidelity(
    jobs: List[ExperimentJob], settings: "ExperimentSettings"
) -> List[ExperimentJob]:
    """Stamp the fidelity tier into cells that do not embed settings.

    Measurement and fault cells carry an explicit ``config`` instead of an
    :class:`ExperimentSettings` value, so the tier would otherwise be absent
    from their cache keys.  They run bit-identically under either tier (the
    fast model delegates fine-grained and fault-injected quanta), but cache
    keys must still be tier-distinct: a result computed under one requested
    tier is never served as the other.
    """
    if settings.fidelity == "accurate":
        return jobs
    return [
        dataclasses.replace(
            job,
            params=tuple(sorted(job.params + (("fidelity", settings.fidelity),))),
        )
        for job in jobs
    ]


def _table1_jobs(request: SpecRequest) -> List[ExperimentJob]:
    settings = request.settings
    return _tag_fidelity(switch_overhead_jobs(
        settings.workloads,
        transitions_to_measure=request.option(
            "transitions_to_measure", settings.switch_transitions
        ),
        warmup_cycles=request.option("warmup_cycles", settings.switch_warmup_cycles),
        config=request.option("config"),
        seed=settings.seeds[0],
    ), settings)


_TABLE1_SCHEMA = MetricSchema(
    keys=("workload",),
    metrics=(
        MetricColumn(
            "enter_dmr_cycles", unit="cycles", aggregate="last",
            label="Enter DMR", fmt="{:.0f}",
        ),
        MetricColumn(
            "leave_dmr_cycles", unit="cycles", aggregate="last",
            label="Leave DMR", fmt="{:.0f}",
        ),
    ),
    views=(
        FrameView(
            title="Table 1: mixed-mode switching overheads (cycles, MMM-TP)",
            metrics=("enter_dmr_cycles", "leave_dmr_cycles"),
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="table1",
        title="Table 1: mode-switch overheads",
        description="Cycle cost of Enter-DMR and Leave-DMR on the full-size machine.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads)
        ),
        enumerate_jobs=_table1_jobs,
        schema=lambda request: _TABLE1_SCHEMA,
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_switch_overhead_experiment",),
    )
)


def _table2_jobs(request: SpecRequest) -> List[ExperimentJob]:
    settings = request.settings
    return _tag_fidelity(switch_frequency_jobs(
        settings.workloads,
        phases_to_measure=request.option(
            "phases_to_measure", settings.frequency_phases
        ),
        measurement_phase_scale=request.option(
            "measurement_phase_scale", settings.frequency_phase_scale
        ),
        config=request.option("config"),
        seed=settings.seeds[0],
    ), settings)


_TABLE2_SCHEMA = MetricSchema(
    keys=("workload",),
    metrics=(
        MetricColumn(
            "user_cycles", unit="cycles", aggregate="last",
            label="User Cycles", fmt="{:.0f}",
        ),
        MetricColumn(
            "os_cycles", unit="cycles", aggregate="last",
            label="OS Cycles", fmt="{:.0f}",
        ),
    ),
    views=(
        FrameView(
            title="Table 2: cycles before switching modes (single-OS, non-DMR baseline)",
            metrics=("user_cycles", "os_cycles"),
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="table2",
        title="Table 2: cycles between mode switches",
        description="Average user and OS phase lengths on the non-DMR baseline.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads)
        ),
        enumerate_jobs=_table2_jobs,
        schema=lambda request: _TABLE2_SCHEMA,
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_switch_frequency_experiment",),
    )
)


def _single_os_jobs(request: SpecRequest) -> List[ExperimentJob]:
    return _table1_jobs(request) + _table2_jobs(request)


def _single_os_samples(
    request: SpecRequest, jobs: Sequence[ExperimentJob], results: JobResults
) -> Iterator[FrameSample]:
    """Merge Table 1 and Table 2 cells into one row per workload.

    Each measurement kind contributes a *partial* sample; the assembler
    merges them by key and the ``overhead_percent`` column derives from the
    merged row."""
    for job in jobs:
        metrics = results[job]
        if job.kind == "table1":
            yield (job.workload,), {
                "switch_cycles": metrics["enter_dmr_cycles"] + metrics["leave_dmr_cycles"]
            }
        else:
            yield (job.workload,), {
                "round_trip_cycles": metrics["user_cycles"] + metrics["os_cycles"]
            }


def _single_os_overhead(row: Mapping[str, object]) -> float:
    switch = float(row.get("switch_cycles") or 0.0)
    total = float(row.get("round_trip_cycles") or 0.0) + switch
    return switch / total * 100.0 if total else 0.0


_SINGLE_OS_SCHEMA = MetricSchema(
    keys=("workload",),
    metrics=(
        MetricColumn(
            "switch_cycles", unit="cycles", aggregate="last",
            label="switch cycles", fmt="{:.0f}",
        ),
        MetricColumn(
            "round_trip_cycles", unit="cycles", aggregate="last",
            label="user+OS cycles", fmt="{:.0f}",
        ),
        MetricColumn(
            "overhead_percent", unit="%", aggregate="derive",
            label="overhead %", derive=_single_os_overhead,
        ),
    ),
    views=(
        FrameView(
            title="Single-OS mode-switching overhead (Table 1 + Table 2 combined)",
            metrics=("switch_cycles", "round_trip_cycles", "overhead_percent"),
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="single-os",
        title="Section 5.3: single-OS switching overhead",
        description="Tables 1 and 2 combined into the single-OS overhead estimate.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("measurement", ("table1", "table2")),
        ),
        enumerate_jobs=_single_os_jobs,
        schema=lambda request: _SINGLE_OS_SCHEMA,
        cell_samples=_single_os_samples,
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_single_os_overhead_study",),
    )
)


_ABLATION_SCHEMA = MetricSchema(
    keys=("workload", "variant"),
    # Single-seed measurement: the cell's raw IPC, not a degenerate CI.
    metrics=(
        MetricColumn(
            "user_ipc", unit="instr/cycle", aggregate="last", label="user IPC"
        ),
    ),
    views=(
        FrameView(
            title="Reunion per-thread IPC vs window size / consistency (normalised)",
            metrics=("user_ipc",),
            pivot="variant",
            normalize_to="window128-sc",
        ),
    ),
)


register_experiment(
    ExperimentSpec(
        name="ablation",
        title="window-size / consistency ablation",
        description=(
            "Reunion IPC under a larger instruction window and a TSO store "
            "buffer (the Section 5.1 prior-work comparison)."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("variant", tuple(ABLATION_VARIANTS)),
        ),
        enumerate_jobs=lambda request: window_ablation_jobs(request.settings),
        schema=lambda request: _ABLATION_SCHEMA,
        multi_seed=False,
        workload_limit=2,
        run_all_group="ablation",
        legacy_entry_points=("run_window_ablation",),
    )
)


def _degradation_failures(request: SpecRequest) -> Tuple[int, ...]:
    explicit = request.options.get("failures")
    if explicit is not None:
        return tuple(int(failed) for failed in explicit)
    return tuple(request.settings.degradation_failed_cores)


def _degradation_schema(request: SpecRequest) -> MetricSchema:
    num_cores = request.settings.config().num_cores
    return MetricSchema(
        keys=("workload", "failed_cores"),
        metrics=(
            _ipc_metric("throughput"),
            _ipc_metric("user_ipc", "user IPC"),
            MetricColumn("paused_vcpu_quanta", aggregate="mean", label="paused quanta"),
            MetricColumn("events_applied", aggregate="mean", label="events"),
        ),
        views=(
            FrameView(
                title=(
                    "Graceful degradation: overall throughput vs surviving cores "
                    "(cores fail mid-run; Reunion DMR machine)"
                ),
                metrics=("throughput",),
                pivot="failed_cores",
                pivot_header=lambda failed: f"{num_cores - int(failed)} cores",
            ),
        ),
    )


register_experiment(
    ExperimentSpec(
        name="degradation",
        title="graceful degradation: throughput vs surviving cores (timeline-driven)",
        description=(
            "Permanent faults retire cores on a mid-run schedule (CoreFailed "
            "timeline events); throughput and per-thread IPC are reported "
            "against the surviving-core count."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("failed_cores", _degradation_failures(request)),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: degradation_jobs(
            request.settings, _degradation_failures(request)
        ),
        schema=_degradation_schema,
        options=(
            SpecOption(
                name="failures",
                flag="--failures",
                parse=parse_count_list,
                metavar="N1,N2,...",
                help=(
                    "failed-core counts to sweep, e.g. '0,2,4,6' "
                    "(default: the settings' sweep)"
                ),
            ),
        ),
        workload_limit=2,
        legacy_entry_points=("run_degradation_experiment",),
    )
)


def _churn_extra_vms(request: SpecRequest) -> int:
    # `is not None`, not truthiness: an explicit `extra_vms=0` from the
    # library wrapper is the no-churn baseline, not "use the default".
    explicit = request.options.get("extra_vms")
    if explicit is not None:
        return int(explicit)
    return int(request.settings.churn_extra_vms)


def _churn_schema(request: SpecRequest) -> MetricSchema:
    extra_vms = _churn_extra_vms(request)
    return MetricSchema(
        keys=("workload",),
        metrics=(
            _ipc_metric("overall_throughput", "throughput"),
            MetricColumn("utilization", label="core utilization"),
            MetricColumn(
                "transition_cycles", unit="cycles",
                label="transition cycles", fmt="{:.0f}",
            ),
            MetricColumn(
                "events_applied", aggregate="mean", label="events", fmt="{:.0f}",
            ),
        ),
        views=(
            FrameView(
                title=(
                    f"Consolidation churn: {extra_vms} burst VM(s) "
                    "arriving/departing mid-run (MMM-TP)"
                ),
                metrics=(
                    "overall_throughput",
                    "utilization",
                    "transition_cycles",
                    "events_applied",
                ),
            ),
        ),
    )


register_experiment(
    ExperimentSpec(
        name="consolidation-churn",
        title="consolidation churn: VMs arriving/departing mid-run (timeline-driven)",
        description=(
            "Deferred burst VMs join and leave the MMM-TP consolidated "
            "server on a VmArrived/VmDeparted timeline; reports utilisation, "
            "throughput and transition overhead under churn."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: churn_jobs(
            request.settings, _churn_extra_vms(request)
        ),
        schema=_churn_schema,
        options=(
            SpecOption(
                name="extra_vms",
                flag="--extra-vms",
                parse=parse_nonnegative_int,
                metavar="N",
                help=(
                    "number of burst VMs arriving/departing mid-run; 0 is "
                    "the no-churn baseline (default: the settings' churn level)"
                ),
            ),
        ),
        workload_limit=2,
        legacy_entry_points=("run_consolidation_churn_experiment",),
    )
)


def _faults_configurations(request: SpecRequest) -> Sequence[object]:
    explicit = request.option("configurations")
    if explicit is not None:
        return explicit
    return SWEEP_CONFIGURATIONS if request.option("all_configurations") else DEFAULT_CONFIGURATIONS


def _faults_rates(request: SpecRequest) -> Tuple[float, ...]:
    sweep = request.option("sweep_rates")
    if sweep:
        return tuple(sweep)
    return (float(request.option("fault_rate", 1.0)),)


def _faults_trials(request: SpecRequest) -> int:
    """Trials per site: the explicit option, else the settings' campaign size.

    Falling back to ``settings.fault_trials_per_site`` is what lets
    ``run_all_experiments`` drive the campaign purely through the settings
    object, with no spec-specific plumbing."""
    return int(request.option("trials", request.settings.fault_trials_per_site))


def _faults_grid(request: SpecRequest) -> ParameterGrid:
    trials = _faults_trials(request)
    chunks = math.ceil(trials / int(request.option("trials_per_cell", DEFAULT_TRIALS_PER_CELL)))
    axes: List[Tuple[str, Sequence[object]]] = []
    rates = _faults_rates(request)
    if len(rates) > 1:
        axes.append(("rate", rates))
    axes += [
        ("configuration", tuple(c.name for c in _faults_configurations(request))),
        ("site", TRIAL_SITES),
        ("seed", request.settings.seeds),
        ("chunk", tuple(range(chunks))),
    ]
    return ParameterGrid.of(*axes)


def _faults_jobs(request: SpecRequest) -> List[ExperimentJob]:
    jobs: List[ExperimentJob] = []
    for rate in _faults_rates(request):
        jobs += fault_campaign_jobs(
            trials_per_site=_faults_trials(request),
            configurations=_faults_configurations(request),
            seeds=request.settings.seeds,
            fault_rate=rate,
            config=request.option("config"),
            trials_per_cell=int(
                request.option("trials_per_cell", DEFAULT_TRIALS_PER_CELL)
            ),
        )
    return _tag_fidelity(jobs, request.settings)


def _faults_sweeping(request: SpecRequest) -> bool:
    return bool(request.option("sweep_rates"))


def _faults_schema(request: SpecRequest) -> MetricSchema:
    sweeping = _faults_sweeping(request)
    keys = ("rate", "configuration") if sweeping else ("configuration",)
    if sweeping:
        views = (
            FrameView(
                title=(
                    "Fault-space sweep: silent corruption rate vs fault-rate scale "
                    f"({_faults_trials(request)} trials/site, "
                    f"{len(tuple(request.settings.seeds))} seeds)"
                ),
                metrics=("silent_corruption_rate",),
                pivot="rate",
                pivot_header="rate {:g}",
            ),
        )
    else:
        views = (
            FrameView(
                title=FAULT_COVERAGE_TITLE,
                metrics=("trials", "coverage", "silent_corruption_rate"),
            ),
        )
    return MetricSchema(
        keys=keys,
        metrics=(
            MetricColumn("trials", dtype="int", aggregate="sum"),
            MetricColumn("coverage"),
            MetricColumn("silent_corruption_rate", label="silent corruption rate"),
        ),
        views=views,
    )


def _faults_samples(
    request: SpecRequest, jobs: Sequence[ExperimentJob], results: JobResults
) -> Iterator[FrameSample]:
    """Per-seed coverage samples, derived across each seed's trial cells.

    A campaign cell is one (configuration, site, seed, chunk) chunk of trial
    records; coverage is only meaningful per seed-share of the campaign, so
    the samples are the per-seed merged reports -- the ``mean_ci``
    aggregation over them is exactly the legacy across-seed interval."""
    sweeping = _faults_sweeping(request)
    seeds = tuple(request.settings.seeds)
    for rate in _faults_rates(request):
        rate_jobs = [job for job in jobs if job.param("fault_rate") == float(rate)]
        merged, per_seed = assemble_campaign_reports(rate_jobs, results)
        for configuration in merged:
            for seed in seeds:
                report = per_seed[(configuration, seed)]
                key: Tuple[object, ...] = (
                    (float(rate), configuration) if sweeping else (configuration,)
                )
                yield key, {
                    "trials": report.total,
                    "coverage": report.coverage,
                    "silent_corruption_rate": report.silent_corruption_rate,
                }


register_experiment(
    ExperimentSpec(
        name="faults",
        title="fault-injection coverage campaign (cell-shaped: parallel and cached)",
        description=(
            "Coverage of reliable state across protection configurations "
            "(Sections 2.1/3.4); --sweep-rates turns it into the fault-space "
            "sweep of coverage vs fault-rate scale."
        ),
        family="faults",
        grid=_faults_grid,
        enumerate_jobs=_faults_jobs,
        schema=_faults_schema,
        cell_samples=_faults_samples,
        options=(
            SpecOption(
                name="trials",
                flag="--trials",
                parse=parse_positive_int,
                default=50,
                metavar="N",
                help="trials per (configuration, fault site, seed) (default: 50)",
            ),
            SpecOption(
                name="sweep_rates",
                flag="--sweep-rates",
                parse=parse_rate_list,
                metavar="R1,R2,...",
                help="sweep these fault-rate scales and print coverage vs rate",
            ),
            SpecOption(
                name="all_configurations",
                flag="--all-configurations",
                is_flag=True,
                help="include the extended configurations (e.g. dmr-plus-pab)",
            ),
        ),
        takes_workloads=False,
        run_all_group="faults",
        legacy_entry_points=(
            "run_fault_coverage_experiment",
            "run_fault_rate_sweep",
        ),
    )
)


# ===================================================================== #
# Fleet: a traffic-driven datacenter of mixed-mode machines
# ===================================================================== #


def parse_scenario_list(value: str) -> Tuple[str, ...]:
    """A comma list of fleet scenario names, validated against the built-ins."""
    names = tuple(
        dict.fromkeys(part.strip() for part in value.split(",") if part.strip())
    )
    if not names:
        raise argparse.ArgumentTypeError("needs at least one scenario name")
    unknown = [name for name in names if name not in SCENARIO_NAMES]
    if unknown:
        known = ", ".join(SCENARIO_NAMES)
        raise argparse.ArgumentTypeError(
            f"unknown scenario(s) {', '.join(unknown)} (known: {known})"
        )
    return names


def _fleet_settings(request: SpecRequest) -> ExperimentSettings:
    """The request's settings with the fleet flags folded in.

    With no explicit flags this is the settings object itself, which is what
    lets ``run_all_experiments`` and the distributed coordinator size the
    fleet purely through settings (the shared enumeration path passes no
    per-spec options)."""
    overrides: Dict[str, object] = {}
    scenarios = request.option("scenarios")
    if scenarios is not None:
        overrides["fleet_scenarios"] = tuple(scenarios)
    machines = request.option("machines")
    if machines is not None:
        overrides["fleet_machines"] = int(machines)
    racks = request.option("racks")
    if racks is not None:
        overrides["fleet_racks"] = min(int(racks), int(machines or request.settings.fleet_machines))
    settings = request.settings
    return dataclasses.replace(settings, **overrides) if overrides else settings


def _fleet_grid(request: SpecRequest) -> ParameterGrid:
    settings = _fleet_settings(request)
    return ParameterGrid.of(
        ("scenario", settings.fleet_scenarios),
        ("machine", fleet_topology(settings).machines()),
        ("seed", settings.seeds),
    )


def _fleet_schema(request: SpecRequest) -> MetricSchema:
    settings = _fleet_settings(request)
    return MetricSchema(
        keys=("scenario",),
        metrics=(
            _ipc_metric("fleet_throughput", "fleet throughput"),
            _ipc_metric("p99_degraded_throughput", "p99 degraded throughput"),
            MetricColumn("availability", label="availability", fmt="{:.4f}"),
            MetricColumn("migrations", aggregate="mean", fmt="{:.1f}"),
            MetricColumn(
                "exposure_cycles", unit="cycles", aggregate="mean",
                label="upgrade exposure", fmt="{:.0f}",
            ),
        ),
        views=(
            FrameView(
                title=(
                    f"Fleet SLOs: {settings.fleet_machines} machines / "
                    f"{settings.fleet_racks} racks under scripted traffic "
                    "(per-machine cells, MMM-TP)"
                ),
                metrics=(
                    "fleet_throughput",
                    "p99_degraded_throughput",
                    "availability",
                    "migrations",
                    "exposure_cycles",
                ),
            ),
        ),
    )


register_experiment(
    ExperimentSpec(
        name="fleet",
        title="fleet scenarios: traffic-driven datacenter of mixed-mode machines",
        description=(
            "Seeded traffic models (diurnal waves, flash crowds, rack-scoped "
            "failure storms, rolling reliability upgrades) drive a fleet of "
            "consolidated MMM-TP servers; the scheduler places and migrates "
            "burst VMs, and each machine runs as one cacheable engine cell. "
            "Reports fleet SLOs: p99 degraded throughput, availability, "
            "migrations and upgrade exposure."
        ),
        grid=_fleet_grid,
        enumerate_jobs=lambda request: fleet_jobs(_fleet_settings(request)),
        schema=_fleet_schema,
        cell_samples=lambda request, jobs, results: fleet_samples(
            request, jobs, results
        ),
        options=(
            SpecOption(
                name="scenarios",
                flag="--scenarios",
                parse=parse_scenario_list,
                metavar="S1,S2,...",
                help=(
                    "fleet scenarios to run, e.g. 'failure-storm,diurnal' "
                    "(default: the settings' scenario list)"
                ),
            ),
            SpecOption(
                name="machines",
                flag="--machines",
                parse=parse_positive_int,
                metavar="N",
                help="fleet size in machines (default: the settings' fleet size)",
            ),
            SpecOption(
                name="racks",
                flag="--racks",
                parse=parse_positive_int,
                metavar="N",
                help="racks to spread the fleet over (default: the settings')",
            ),
        ),
        workload_limit=2,
    )
)


# The fuzz spec lives with its subsystem; importing it here (after every
# registry name above is defined -- it imports back into this module)
# registers the always-on ``fuzz`` experiment.
import repro.sim.fuzz.spec  # noqa: E402,F401  isort:skip
