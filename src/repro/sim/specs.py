"""Declarative experiment specs and the central ``EXPERIMENTS`` registry.

Every evaluation of the reproduction -- each paper figure/table and the
fault-injection campaigns -- is described by one :class:`ExperimentSpec`: a
plain-value object naming the experiment, the :class:`ParameterGrid` of axes
it sweeps (workload x configuration x seed, ...), how its cells are
enumerated as :class:`~repro.sim.jobs.ExperimentJob` values, how the
returned metrics are assembled into a result object, and how that result is
rendered (:meth:`~ExperimentSpec.to_table` / :meth:`~ExperimentSpec.to_json`).

Specs are registered in the module-level :data:`EXPERIMENTS` registry, which
is the single source of truth the rest of the system iterates:

* the ``run_*`` entry points of :mod:`repro.sim.experiments` are thin
  wrappers over :meth:`ExperimentSpec.run`;
* ``run_all_experiments`` enumerates every registered spec's cells into one
  job batch;
* the CLI generates one subcommand per spec -- flags, help text and
  defaults all come from the spec's metadata (:class:`SpecOption`), so a
  new experiment shows up in ``repro <name>`` and ``repro list`` without
  touching :mod:`repro.cli`.

Adding a new scenario is therefore a ~30-line spec: declare a grid, an
enumerator mapping grid points to jobs (reusing a registered job kind, or
registering a new one via :func:`repro.sim.jobs.register_job_kind`), an
assembly step, and call :func:`register_experiment`.  See
``examples/custom_experiment.py`` for a worked example.
"""

from __future__ import annotations

import argparse
import dataclasses
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.config.system import PabLookupMode
from repro.errors import ExperimentError
from repro.faults.campaign import (
    DEFAULT_CONFIGURATIONS,
    SWEEP_CONFIGURATIONS,
    TRIAL_SITES,
)
from repro.faults.cells import DEFAULT_TRIALS_PER_CELL, fault_campaign_jobs
from repro.sim import experiments as _exp
from repro.sim.experiments import (
    ABLATION_VARIANTS,
    FIGURE5_CONFIGS,
    FIGURE6_CONFIGS,
    ExperimentSettings,
    churn_jobs,
    degradation_jobs,
    figure5_jobs,
    figure6_jobs,
    pab_jobs,
    switch_frequency_jobs,
    switch_overhead_jobs,
    window_ablation_jobs,
)
from repro.sim.jobs import ExperimentJob
from repro.sim.runner import ExperimentRunner, Metrics, default_runner

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "ParameterGrid",
    "SpecOption",
    "SpecRequest",
    "experiment",
    "experiment_names",
    "register_experiment",
    "jsonify",
    "parse_count_list",
    "parse_nonnegative_int",
    "parse_positive_int",
    "parse_rate_list",
    "parse_seed_list",
]

JobResults = Mapping[ExperimentJob, Metrics]


# ===================================================================== #
# Parameter grids
# ===================================================================== #


@dataclass(frozen=True)
class ParameterGrid:
    """The cartesian axes one experiment sweeps, in nesting order.

    Purely descriptive -- the grid names the cell space (its size equals the
    number of enumerated jobs), which is what ``repro list`` prints and what
    :meth:`ExperimentSpec.to_json` records alongside the results.
    """

    #: Ordered (axis name, axis values) pairs; the last axis varies fastest.
    axes: Tuple[Tuple[str, Tuple[object, ...]], ...]

    @classmethod
    def of(cls, *axes: Tuple[str, Sequence[object]]) -> "ParameterGrid":
        """Build a grid from (name, values) pairs, normalising to tuples."""
        return cls(axes=tuple((name, tuple(values)) for name, values in axes))

    def names(self) -> Tuple[str, ...]:
        """The axis names, outermost first."""
        return tuple(name for name, _ in self.axes)

    def axis(self, name: str) -> Tuple[object, ...]:
        """The values of one axis."""
        for axis_name, values in self.axes:
            if axis_name == name:
                return values
        raise ExperimentError(f"grid has no axis named {name!r}")

    def size(self) -> int:
        """Number of grid points (cells)."""
        return math.prod(len(values) for _, values in self.axes) if self.axes else 0

    def points(self) -> Iterator[Dict[str, object]]:
        """Every grid point as an ``{axis: value}`` dict, row-major."""

        def expand(index: int, point: Dict[str, object]) -> Iterator[Dict[str, object]]:
            if index == len(self.axes):
                yield dict(point)
                return
            name, values = self.axes[index]
            for value in values:
                point[name] = value
                yield from expand(index + 1, point)

        yield from expand(0, {})

    def describe(self) -> str:
        """Compact human-readable shape, e.g. ``workload(6) x seed(10)``."""
        if not self.axes:
            return "(empty)"
        return " x ".join(f"{name}({len(values)})" for name, values in self.axes)


# ===================================================================== #
# Option metadata (drives the auto-generated CLI flags)
# ===================================================================== #


def parse_positive_int(value: str) -> int:
    """Argparse type for counts that must be at least 1."""
    number = int(value)
    if number < 1:
        raise argparse.ArgumentTypeError("must be at least 1")
    return number


def parse_nonnegative_int(value: str) -> int:
    """Argparse type for counts where 0 is meaningful (e.g. no-churn)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError("must be non-negative")
    return number


def parse_seed_list(value: str) -> Tuple[int, ...]:
    """``--seeds`` accepts a comma list ('0,1,2') or a count N (seeds 0..N-1)."""
    try:
        if "," in value:
            # dict.fromkeys: drop duplicate seeds while keeping their order
            # (a duplicated seed would double-count its cells in a sweep).
            seeds = tuple(
                dict.fromkeys(int(part) for part in value.split(",") if part.strip())
            )
        else:
            seeds = tuple(range(int(value)))
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated seed list like '0,1,2' or a count like '5'"
        ) from None
    if not seeds:
        raise argparse.ArgumentTypeError("needs at least one seed")
    return seeds


def parse_count_list(value: str) -> Tuple[int, ...]:
    """A comma list of non-negative integers (e.g. ``--failures 0,2,4``)."""
    try:
        counts = tuple(
            dict.fromkeys(int(part) for part in value.split(",") if part.strip())
        )
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of counts like '0,2,4'"
        ) from None
    if not counts or any(count < 0 for count in counts):
        raise argparse.ArgumentTypeError("counts must be non-negative integers")
    return counts


def parse_rate_list(value: str) -> Tuple[float, ...]:
    """``--sweep-rates`` accepts a comma list of fault-rate scales in (0, 1]."""
    try:
        rates = tuple(float(part) for part in value.split(",") if part.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            "expected a comma-separated list of rates like '0.25,0.5,1.0'"
        ) from None
    # `not (0 < rate <= 1)` rather than `rate <= 0 or rate > 1`: the former
    # also rejects NaN, for which every comparison is False.
    if not rates or any(not (0.0 < rate <= 1.0) for rate in rates):
        raise argparse.ArgumentTypeError("rates must lie in (0, 1]")
    return rates


@dataclass(frozen=True)
class SpecOption:
    """One experiment-specific CLI flag, declared as spec metadata.

    The CLI materialises every option as an ``argparse`` argument; the
    parsed values reach the spec through :attr:`SpecRequest.options`.
    """

    #: Option name and ``argparse`` destination (underscored).
    name: str
    #: Command-line flag (dashed), e.g. ``--sweep-rates``.
    flag: str
    help: str = ""
    default: object = None
    #: Parser for the flag's string value; ignored for boolean flags.
    parse: Optional[Callable[[str], object]] = None
    metavar: Optional[str] = None
    #: ``True`` for a ``store_true`` switch.
    is_flag: bool = False


# ===================================================================== #
# Requests and specs
# ===================================================================== #


@dataclass(frozen=True)
class SpecRequest:
    """One resolved ask of a spec: settings plus experiment-specific options.

    Built by :meth:`ExperimentSpec.request` (which applies the spec's
    workload limit and single-seed policy), and passed verbatim to the
    spec's ``grid`` / ``enumerate_jobs`` / ``assemble`` hooks.
    """

    settings: ExperimentSettings
    options: Mapping[str, object] = field(default_factory=dict)

    def option(self, name: str, default: object = None) -> object:
        """Read one option, falling back to ``default`` when unset/None."""
        value = self.options.get(name)
        return default if value is None else value


@dataclass(frozen=True)
class ExperimentSpec:
    """A declarative, re-runnable description of one experiment.

    The hooks receive a resolved :class:`SpecRequest`; everything else --
    running through a :class:`~repro.sim.runner.ExperimentRunner`, uniform
    table and JSON rendering -- is provided by the spec machinery.
    """

    #: Registry key, CLI subcommand and JSON ``experiment`` field.
    name: str
    #: One-line summary (the CLI subcommand's help text).
    title: str
    #: Longer prose for ``repro list``/docs; defaults to the title.
    description: str = ""
    #: Spec family (``simulation``, ``measurement``, ``faults``) -- how the
    #: cells execute, used for grouping in ``repro list`` and the tests.
    family: str = "simulation"
    #: The swept axes, given the resolved request.
    grid: Callable[[SpecRequest], ParameterGrid] = lambda request: ParameterGrid(())
    #: The request's cells as picklable engine jobs.
    enumerate_jobs: Callable[[SpecRequest], List[ExperimentJob]] = (
        lambda request: []
    )
    #: Fold the runner's ``{job: metrics}`` output into a result object.
    assemble: Callable[[SpecRequest, Sequence[ExperimentJob], JobResults], object] = (
        lambda request, jobs, results: None
    )
    #: Render a result as its plain-text tables, in presentation order.
    tables: Callable[[object], List[str]] = lambda result: []
    #: Experiment-specific CLI flags.
    options: Tuple[SpecOption, ...] = ()
    #: ``False`` for single-seed measurements: the request keeps only the
    #: first seed, and the CLI announces dropped seeds instead of silently
    #: ignoring them.
    multi_seed: bool = True
    #: When set, a request that did not explicitly choose workloads is
    #: limited to the first N (the ablation runs two by default).
    workload_limit: Optional[int] = None
    #: Whether the experiment sweeps the paper workloads at all (the fault
    #: campaigns sweep fault sites instead; the CLI then offers no
    #: ``--workloads``/``--quick`` flags).
    takes_workloads: bool = True
    #: ``run_all_experiments`` skip group (``switching``, ``ablation``,
    #: ``faults``) or ``None`` for the always-on core experiments.
    run_all_group: Optional[str] = None
    #: Names of the legacy ``run_*`` entry points this spec subsumes.
    legacy_entry_points: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # Request resolution and execution
    # ------------------------------------------------------------------ #

    def request(
        self,
        settings: Optional[ExperimentSettings] = None,
        *,
        explicit_workloads: bool = False,
        **options: object,
    ) -> SpecRequest:
        """Resolve settings + options into the request the hooks consume."""
        settings = settings or ExperimentSettings()
        if (
            self.workload_limit is not None
            and not explicit_workloads
            and len(settings.workloads) > self.workload_limit
        ):
            settings = settings.with_workloads(
                settings.workloads[: self.workload_limit]
            )
        if not self.multi_seed and len(settings.seeds) > 1:
            settings = settings.with_seeds(settings.seeds[:1])
        return SpecRequest(settings=settings, options=options)

    def run(
        self,
        settings: Optional[ExperimentSettings] = None,
        runner: Optional[ExperimentRunner] = None,
        request: Optional[SpecRequest] = None,
        **options: object,
    ) -> object:
        """Enumerate, execute and assemble this experiment.

        Either pass a pre-resolved ``request`` or let ``settings`` and
        keyword options be resolved via :meth:`request`.
        """
        if request is None:
            request = self.request(settings, **options)
        runner = runner or default_runner()
        jobs = self.enumerate_jobs(request)
        results = runner.run_jobs(jobs)
        return self.assemble(request, jobs, results)

    # ------------------------------------------------------------------ #
    # Uniform result rendering
    # ------------------------------------------------------------------ #

    def to_table(self, result: object) -> str:
        """Every table of a result, joined the way the CLI prints them."""
        return "\n\n".join(self.tables(result))

    def to_json(self, result: object) -> Dict[str, object]:
        """A JSON-safe record of a result (uniform across specs)."""
        return {
            "experiment": self.name,
            "title": self.title,
            "family": self.family,
            "result": jsonify(result),
        }


def jsonify(value: object) -> object:
    """Recursively convert any spec result into JSON-serializable values.

    Dataclasses become field dicts (honouring a ``to_dict`` method when one
    exists), enums their names, mappings get string keys; anything else
    unknown falls back to ``str``.
    """
    to_dict = getattr(value, "to_dict", None)
    if callable(to_dict) and not isinstance(value, type):
        return jsonify(to_dict())
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: jsonify(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Enum):
        return value.name
    if isinstance(value, Mapping):
        return {str(key): jsonify(item) for key, item in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(item) for item in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


# ===================================================================== #
# The registry
# ===================================================================== #

#: Every registered experiment spec, in registration (= presentation) order.
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register_experiment(spec: ExperimentSpec, *, replace: bool = False) -> ExperimentSpec:
    """Add a spec to :data:`EXPERIMENTS` (rejecting silent name collisions)."""
    if spec.name in EXPERIMENTS and not replace:
        raise ExperimentError(f"experiment {spec.name!r} is already registered")
    EXPERIMENTS[spec.name] = spec
    return spec


def experiment(name: str) -> ExperimentSpec:
    """Look up one registered spec by name."""
    try:
        return EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS) or "none"
        raise ExperimentError(
            f"unknown experiment {name!r} (registered: {known})"
        ) from None


def experiment_names() -> Tuple[str, ...]:
    """The registered experiment names, in presentation order."""
    return tuple(EXPERIMENTS)


# ===================================================================== #
# The reproduction's specs
# ===================================================================== #


def _seed_grid(request: SpecRequest, configurations: Sequence[object]) -> ParameterGrid:
    return ParameterGrid.of(
        ("workload", request.settings.workloads),
        ("configuration", configurations),
        ("seed", request.settings.seeds),
    )


register_experiment(
    ExperimentSpec(
        name="figure5",
        title="Figure 5: DMR overhead (IPC and throughput)",
        description=(
            "Per-thread user IPC and overall throughput of No DMR 2X, "
            "No DMR and Reunion-style DMR."
        ),
        grid=lambda request: _seed_grid(request, FIGURE5_CONFIGS),
        enumerate_jobs=lambda request: figure5_jobs(request.settings),
        assemble=lambda request, jobs, results: _exp.assemble_figure5(
            request.settings, results
        ),
        tables=lambda result: [
            result.format_ipc_table(),
            result.format_throughput_table(),
        ],
        legacy_entry_points=("run_dmr_overhead_experiment",),
    )
)


register_experiment(
    ExperimentSpec(
        name="figure6",
        title="Figure 6: mixed-mode performance",
        description=(
            "Per-VM IPC and throughput of the consolidated server under "
            "DMR Base, MMM-IPC and MMM-TP."
        ),
        grid=lambda request: _seed_grid(
            request, request.option("configurations", FIGURE6_CONFIGS)
        ),
        enumerate_jobs=lambda request: figure6_jobs(
            request.settings, request.option("configurations", FIGURE6_CONFIGS)
        ),
        assemble=lambda request, jobs, results: _exp.assemble_figure6(
            request.settings,
            results,
            request.option("configurations", FIGURE6_CONFIGS),
        ),
        tables=lambda result: [
            result.format_ipc_table(),
            result.format_throughput_table(),
        ],
        legacy_entry_points=("run_mixed_mode_experiment",),
    )
)


register_experiment(
    ExperimentSpec(
        name="pab",
        title="Section 5.2: serial vs parallel PAB lookup",
        description="IPC sensitivity of the performance VM to a serialised PAB lookup.",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("lookup", tuple(mode.value for mode in (PabLookupMode.PARALLEL, PabLookupMode.SERIAL))),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: pab_jobs(request.settings),
        assemble=lambda request, jobs, results: _exp.assemble_pab(
            request.settings, results
        ),
        tables=lambda result: [result.format_table()],
        legacy_entry_points=("run_pab_latency_study",),
    )
)


def _table1_jobs(request: SpecRequest) -> List[ExperimentJob]:
    settings = request.settings
    return switch_overhead_jobs(
        settings.workloads,
        transitions_to_measure=request.option(
            "transitions_to_measure", settings.switch_transitions
        ),
        warmup_cycles=request.option("warmup_cycles", settings.switch_warmup_cycles),
        config=request.option("config"),
        seed=settings.seeds[0],
    )


register_experiment(
    ExperimentSpec(
        name="table1",
        title="Table 1: mode-switch overheads",
        description="Cycle cost of Enter-DMR and Leave-DMR on the full-size machine.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads)
        ),
        enumerate_jobs=_table1_jobs,
        assemble=lambda request, jobs, results: _exp.assemble_table1(jobs, results),
        tables=lambda result: [result.format_table()],
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_switch_overhead_experiment",),
    )
)


def _table2_jobs(request: SpecRequest) -> List[ExperimentJob]:
    settings = request.settings
    return switch_frequency_jobs(
        settings.workloads,
        phases_to_measure=request.option(
            "phases_to_measure", settings.frequency_phases
        ),
        measurement_phase_scale=request.option(
            "measurement_phase_scale", settings.frequency_phase_scale
        ),
        config=request.option("config"),
        seed=settings.seeds[0],
    )


register_experiment(
    ExperimentSpec(
        name="table2",
        title="Table 2: cycles between mode switches",
        description="Average user and OS phase lengths on the non-DMR baseline.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads)
        ),
        enumerate_jobs=_table2_jobs,
        assemble=lambda request, jobs, results: _exp.assemble_table2(jobs, results),
        tables=lambda result: [result.format_table()],
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_switch_frequency_experiment",),
    )
)


def _single_os_jobs(request: SpecRequest) -> List[ExperimentJob]:
    return _table1_jobs(request) + _table2_jobs(request)


def _assemble_single_os(
    request: SpecRequest, jobs: Sequence[ExperimentJob], results: JobResults
) -> object:
    table1 = _exp.assemble_table1([j for j in jobs if j.kind == "table1"], results)
    table2 = _exp.assemble_table2([j for j in jobs if j.kind == "table2"], results)
    return _exp.combine_single_os(table1, table2, request.settings.workloads)


register_experiment(
    ExperimentSpec(
        name="single-os",
        title="Section 5.3: single-OS switching overhead",
        description="Tables 1 and 2 combined into the single-OS overhead estimate.",
        family="measurement",
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("measurement", ("table1", "table2")),
        ),
        enumerate_jobs=_single_os_jobs,
        assemble=_assemble_single_os,
        tables=lambda result: [result.format_table()],
        multi_seed=False,
        run_all_group="switching",
        legacy_entry_points=("run_single_os_overhead_study",),
    )
)


register_experiment(
    ExperimentSpec(
        name="ablation",
        title="window-size / consistency ablation",
        description=(
            "Reunion IPC under a larger instruction window and a TSO store "
            "buffer (the Section 5.1 prior-work comparison)."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("variant", tuple(ABLATION_VARIANTS)),
        ),
        enumerate_jobs=lambda request: window_ablation_jobs(request.settings),
        assemble=lambda request, jobs, results: _exp.assemble_ablation(
            request.settings, results
        ),
        tables=lambda result: [result.format_table()],
        multi_seed=False,
        workload_limit=2,
        run_all_group="ablation",
        legacy_entry_points=("run_window_ablation",),
    )
)


def _degradation_failures(request: SpecRequest) -> Tuple[int, ...]:
    explicit = request.options.get("failures")
    if explicit is not None:
        return tuple(int(failed) for failed in explicit)
    return tuple(request.settings.degradation_failed_cores)


register_experiment(
    ExperimentSpec(
        name="degradation",
        title="graceful degradation: throughput vs surviving cores (timeline-driven)",
        description=(
            "Permanent faults retire cores on a mid-run schedule (CoreFailed "
            "timeline events); throughput and per-thread IPC are reported "
            "against the surviving-core count."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("failed_cores", _degradation_failures(request)),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: degradation_jobs(
            request.settings, _degradation_failures(request)
        ),
        assemble=lambda request, jobs, results: _exp.assemble_degradation(
            request.settings, _degradation_failures(request), jobs, results
        ),
        tables=lambda result: [result.format_table()],
        options=(
            SpecOption(
                name="failures",
                flag="--failures",
                parse=parse_count_list,
                metavar="N1,N2,...",
                help=(
                    "failed-core counts to sweep, e.g. '0,2,4,6' "
                    "(default: the settings' sweep)"
                ),
            ),
        ),
        workload_limit=2,
        legacy_entry_points=("run_degradation_experiment",),
    )
)


def _churn_extra_vms(request: SpecRequest) -> int:
    # `is not None`, not truthiness: an explicit `extra_vms=0` from the
    # library wrapper is the no-churn baseline, not "use the default".
    explicit = request.options.get("extra_vms")
    if explicit is not None:
        return int(explicit)
    return int(request.settings.churn_extra_vms)


register_experiment(
    ExperimentSpec(
        name="consolidation-churn",
        title="consolidation churn: VMs arriving/departing mid-run (timeline-driven)",
        description=(
            "Deferred burst VMs join and leave the MMM-TP consolidated "
            "server on a VmArrived/VmDeparted timeline; reports utilisation, "
            "throughput and transition overhead under churn."
        ),
        grid=lambda request: ParameterGrid.of(
            ("workload", request.settings.workloads),
            ("seed", request.settings.seeds),
        ),
        enumerate_jobs=lambda request: churn_jobs(
            request.settings, _churn_extra_vms(request)
        ),
        assemble=lambda request, jobs, results: _exp.assemble_churn(
            request.settings, _churn_extra_vms(request), jobs, results
        ),
        tables=lambda result: [result.format_table()],
        options=(
            SpecOption(
                name="extra_vms",
                flag="--extra-vms",
                parse=parse_nonnegative_int,
                metavar="N",
                help=(
                    "number of burst VMs arriving/departing mid-run; 0 is "
                    "the no-churn baseline (default: the settings' churn level)"
                ),
            ),
        ),
        workload_limit=2,
        legacy_entry_points=("run_consolidation_churn_experiment",),
    )
)


def _faults_configurations(request: SpecRequest) -> Sequence[object]:
    explicit = request.option("configurations")
    if explicit is not None:
        return explicit
    return SWEEP_CONFIGURATIONS if request.option("all_configurations") else DEFAULT_CONFIGURATIONS


def _faults_rates(request: SpecRequest) -> Tuple[float, ...]:
    sweep = request.option("sweep_rates")
    if sweep:
        return tuple(sweep)
    return (float(request.option("fault_rate", 1.0)),)


def _faults_trials(request: SpecRequest) -> int:
    """Trials per site: the explicit option, else the settings' campaign size.

    Falling back to ``settings.fault_trials_per_site`` is what lets
    ``run_all_experiments`` drive the campaign purely through the settings
    object, with no spec-specific plumbing."""
    return int(request.option("trials", request.settings.fault_trials_per_site))


def _faults_grid(request: SpecRequest) -> ParameterGrid:
    trials = _faults_trials(request)
    chunks = math.ceil(trials / int(request.option("trials_per_cell", DEFAULT_TRIALS_PER_CELL)))
    axes: List[Tuple[str, Sequence[object]]] = []
    rates = _faults_rates(request)
    if len(rates) > 1:
        axes.append(("rate", rates))
    axes += [
        ("configuration", tuple(c.name for c in _faults_configurations(request))),
        ("site", TRIAL_SITES),
        ("seed", request.settings.seeds),
        ("chunk", tuple(range(chunks))),
    ]
    return ParameterGrid.of(*axes)


def _faults_jobs(request: SpecRequest) -> List[ExperimentJob]:
    jobs: List[ExperimentJob] = []
    for rate in _faults_rates(request):
        jobs += fault_campaign_jobs(
            trials_per_site=_faults_trials(request),
            configurations=_faults_configurations(request),
            seeds=request.settings.seeds,
            fault_rate=rate,
            config=request.option("config"),
            trials_per_cell=int(
                request.option("trials_per_cell", DEFAULT_TRIALS_PER_CELL)
            ),
        )
    return jobs


def _assemble_faults(
    request: SpecRequest, jobs: Sequence[ExperimentJob], results: JobResults
) -> object:
    trials = _faults_trials(request)
    seeds = tuple(request.settings.seeds)
    rates = _faults_rates(request)
    by_rate: Dict[float, object] = {}
    for rate in rates:
        rate_jobs = [job for job in jobs if job.param("fault_rate") == float(rate)]
        by_rate[rate] = _exp.assemble_fault_coverage(
            rate_jobs, results, trials, seeds, float(rate)
        )
    if not request.option("sweep_rates"):
        return by_rate[rates[0]]
    return _exp.FaultRateSweepResult(
        trials_per_site=trials, seeds=seeds, fault_rates=rates, by_rate=by_rate
    )


register_experiment(
    ExperimentSpec(
        name="faults",
        title="fault-injection coverage campaign (cell-shaped: parallel and cached)",
        description=(
            "Coverage of reliable state across protection configurations "
            "(Sections 2.1/3.4); --sweep-rates turns it into the fault-space "
            "sweep of coverage vs fault-rate scale."
        ),
        family="faults",
        grid=_faults_grid,
        enumerate_jobs=_faults_jobs,
        assemble=_assemble_faults,
        tables=lambda result: [result.format_table()],
        options=(
            SpecOption(
                name="trials",
                flag="--trials",
                parse=parse_positive_int,
                default=50,
                metavar="N",
                help="trials per (configuration, fault site, seed) (default: 50)",
            ),
            SpecOption(
                name="sweep_rates",
                flag="--sweep-rates",
                parse=parse_rate_list,
                metavar="R1,R2,...",
                help="sweep these fault-rate scales and print coverage vs rate",
            ),
            SpecOption(
                name="all_configurations",
                flag="--all-configurations",
                is_flag=True,
                help="include the extended configurations (e.g. dmr-plus-pab)",
            ),
        ),
        takes_workloads=False,
        run_all_group="faults",
        legacy_entry_points=(
            "run_fault_coverage_experiment",
            "run_fault_rate_sweep",
        ),
    )
)
