"""Automatic shrinking of failing scenarios to a minimal reproduction.

Given a scenario and a checker (scenario -> violations), :func:`shrink`
greedily reduces the scenario while the *same oracle* keeps firing: it drops
timeline events delta-debugging style (halves first, then singles), removes
roster VMs (together with the events that name them), collapses VCPU counts
and truncates the horizon, re-checking after every candidate and keeping
only reductions that still reproduce.  The search is plain ordered
iteration -- no randomness -- so the minimal scenario is a deterministic
function of the failing one, which keeps shrinking cacheable inside the
cell executor.

A candidate that *crashes* the simulator is not a reproduction unless the
target oracle is the crash itself: the checker is expected to map crashes to
a ``no-crash`` violation, so the same-oracle rule handles both uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, List, Sequence, Tuple

from repro.sim.fuzz.generate import FuzzScenario, FuzzVm
from repro.sim.fuzz.oracles import InvariantViolation
from repro.sim.timeline import Timeline, TimelineEvent

__all__ = ["ShrinkResult", "repro_snippet", "shrink"]

#: Horizon truncation never goes below this many measured cycles.
MIN_TOTAL_CYCLES = 1_000

Checker = Callable[[FuzzScenario], List[InvariantViolation]]


@dataclass(frozen=True)
class ShrinkResult:
    """The outcome of shrinking one failing scenario."""

    scenario: FuzzScenario
    violations: Tuple[InvariantViolation, ...]
    #: Accepted reductions (0 when the scenario was already minimal).
    steps: int
    #: Candidate scenarios checked (the search cost).
    attempts: int


def _with_events(scenario: FuzzScenario, events: Sequence[TimelineEvent]) -> FuzzScenario:
    return replace(scenario, timeline=Timeline(events=tuple(events)))


def _without_vm(scenario: FuzzScenario, vm: FuzzVm) -> FuzzScenario:
    """Drop one VM and every event that names it."""
    roster = tuple(entry for entry in scenario.roster if entry.name != vm.name)
    events = tuple(
        event
        for event in scenario.timeline.events
        if getattr(event, "vm_name", None) != vm.name
    )
    return replace(scenario, roster=roster, timeline=Timeline(events=events))


class _Shrinker:
    def __init__(self, check: Checker, target: str) -> None:
        self.check = check
        self.target = target
        self.steps = 0
        self.attempts = 0
        self.violations: Tuple[InvariantViolation, ...] = ()

    def reproduces(self, candidate: FuzzScenario) -> bool:
        self.attempts += 1
        violations = self.check(candidate)
        if any(violation.oracle == self.target for violation in violations):
            self.violations = tuple(violations)
            return True
        return False

    def accept(self, candidate: FuzzScenario) -> FuzzScenario:
        self.steps += 1
        return candidate

    # -------------------------------------------------------------- #
    # The individual reduction passes (each returns the best scenario
    # it reached and loops internally until it stops helping)
    # -------------------------------------------------------------- #

    def drop_events(self, scenario: FuzzScenario) -> FuzzScenario:
        """ddmin-style event removal: large chunks first, then singles."""
        events = list(scenario.timeline.events)
        chunk = max(1, len(events) // 2)
        while chunk >= 1:
            index = 0
            while index < len(events):
                candidate_events = events[:index] + events[index + chunk:]
                candidate = _with_events(scenario, candidate_events)
                if self.reproduces(candidate):
                    scenario = self.accept(candidate)
                    events = candidate_events
                    # Re-test the same index: the next chunk slid into it.
                else:
                    index += chunk
            chunk //= 2
        return scenario

    def drop_vms(self, scenario: FuzzScenario) -> FuzzScenario:
        """Remove roster VMs, keeping at least one present at start."""
        index = 0
        while index < len(scenario.roster):
            vm = scenario.roster[index]
            remaining = [entry for entry in scenario.roster if entry.name != vm.name]
            if not any(entry.present_at_start for entry in remaining):
                index += 1
                continue
            candidate = _without_vm(scenario, vm)
            if self.reproduces(candidate):
                scenario = self.accept(candidate)
                # Same index now names the next VM.
            else:
                index += 1
        return scenario

    def collapse_vcpus(self, scenario: FuzzScenario) -> FuzzScenario:
        """Reduce each VM to a single VCPU where the failure survives."""
        for index, vm in enumerate(scenario.roster):
            if vm.vcpus <= 1:
                continue
            roster = list(scenario.roster)
            roster[index] = replace(vm, vcpus=1)
            candidate = replace(scenario, roster=tuple(roster))
            if self.reproduces(candidate):
                scenario = self.accept(candidate)
        return scenario

    def truncate_horizon(self, scenario: FuzzScenario) -> FuzzScenario:
        """Strip warmup and halve the measured window while reproducing."""
        if scenario.warmup_cycles > 0:
            candidate = replace(scenario, warmup_cycles=0)
            if self.reproduces(candidate):
                scenario = self.accept(candidate)
        while scenario.total_cycles > MIN_TOTAL_CYCLES:
            shorter = max(MIN_TOTAL_CYCLES, scenario.total_cycles // 2)
            if shorter == scenario.total_cycles:
                break
            candidate = replace(scenario, total_cycles=shorter)
            if not self.reproduces(candidate):
                break
            scenario = self.accept(candidate)
        return scenario


def shrink(scenario: FuzzScenario, check: Checker) -> ShrinkResult:
    """Reduce a failing scenario to a minimal one that still reproduces.

    The *target* is the oracle of the first violation on the unshrunk
    scenario; a candidate reproduces when that same oracle still fires.
    Returns the scenario unchanged (with zero steps) when it does not fail
    at all.
    """
    initial = check(scenario)
    if not initial:
        return ShrinkResult(scenario=scenario, violations=(), steps=0, attempts=1)
    shrinker = _Shrinker(check, target=initial[0].oracle)
    shrinker.violations = tuple(initial)
    shrinker.attempts = 1
    previous_steps = -1
    while shrinker.steps != previous_steps:
        previous_steps = shrinker.steps
        scenario = shrinker.drop_events(scenario)
        scenario = shrinker.drop_vms(scenario)
        scenario = shrinker.collapse_vcpus(scenario)
        scenario = shrinker.truncate_horizon(scenario)
    return ShrinkResult(
        scenario=scenario,
        violations=shrinker.violations,
        steps=shrinker.steps,
        attempts=shrinker.attempts,
    )


def repro_snippet(scenario: FuzzScenario, violations: Sequence[InvariantViolation]) -> str:
    """A ready-to-commit reproduction of one (shrunk) failing scenario.

    The snippet is valid Python built from the repo's own public API, plus
    the one-line replay command for the case it came from -- paste the code
    into a regression test, or re-run the case verbosely with
    ``repro fuzz --reproduce``.
    """
    lines = [
        f"# fuzz case {scenario.case_id} (profile={scenario.profile}, "
        f"policy={scenario.policy})",
    ]
    for violation in violations:
        lines.append(f"#   {violation.oracle}: {violation.detail}")
    lines.append(
        f"# replay: python -m repro fuzz --reproduce {scenario.case_id}"
    )
    lines.append("roster = [")
    for vm in scenario.roster:
        lines.append(
            f"    VmSpec(name={vm.name!r}, workload={vm.workload!r}, "
            f"num_vcpus={vm.vcpus}, reliability=ReliabilityMode.{vm.mode}, "
            f"present_at_start={vm.present_at_start}),"
        )
    lines.append("]")
    if scenario.timeline.events:
        lines.append("timeline = Timeline.of(")
        for event in scenario.timeline.events:
            lines.append(f"    {event!r},")
        lines.append(")")
    else:
        lines.append("timeline = Timeline()")
    lines.append(
        f"# policy={scenario.policy!r}, total_cycles={scenario.total_cycles}, "
        f"warmup_cycles={scenario.warmup_cycles}, seed={scenario.seed}"
    )
    return "\n".join(lines)
