"""Seeded generation of random-but-valid dynamic scenarios.

A fuzz *scenario* is everything one simulation cell needs: a VM roster, a
mapping policy, a (total, warmup) horizon and an ordered
:class:`~repro.sim.timeline.Timeline` drawing from all seven event kinds.
Scenarios are random but *valid by construction*: the generator walks the
timeline in cycle order with a model of the machine's lifecycle state (which
VMs are active, which cores are retired) and only emits events the machine's
guards accept at that point -- a ``VmDeparted`` never drains the last active
VM, a ``CoreFailed`` never retires the pool below three healthy cores, a
``CoreRepaired`` always names a retired core.  The model is prefix-closed,
so the events beyond the run's horizon (deliberately generated to exercise
the pending-event ledger) would also apply cleanly if the horizon grew.

``PERFORMANCE_USER_ONLY`` is deliberately absent from the generated mode
pool: under the default fine-grained-switching options, a user-only VCPU on
any mixed-mode policy except MMM-IPC is a configuration error (it needs a
reserved partner core), so drawing it would fuzz the *configuration
validator* rather than the lifecycle machinery.

All randomness flows through identity-derived
:class:`~repro.common.rng.DeterministicRng` forks, so a scenario is a pure
function of ``(settings, profile, case, seed)``: cells stay cacheable and
byte-identical across backends and job chunking.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Set, Tuple

from repro.common.rng import DeterministicRng
from repro.errors import ExperimentError
from repro.sim.settings import ExperimentSettings
from repro.sim.timeline import (
    CoreFailed,
    CoreRepaired,
    FaultRateBurst,
    PolicyChanged,
    ReliabilityModeChanged,
    Timeline,
    TimelineEvent,
    VmArrived,
    VmDeparted,
)

__all__ = [
    "FUZZ_PROFILES",
    "PROFILE_NAMES",
    "FuzzProfile",
    "FuzzScenario",
    "FuzzVm",
    "generate_scenario",
    "parse_case_id",
]

#: Policies a scenario may start under or hot-swap to mid-run.
POLICY_POOL: Tuple[str, ...] = (
    "no-dmr",
    "dmr-base",
    "mmm-ipc",
    "mmm-tp",
    "mmm-adaptive",
)

#: Reliability modes the generator draws (see the module docstring for why
#: ``PERFORMANCE_USER_ONLY`` is excluded).
MODE_POOL: Tuple[str, ...] = ("RELIABLE", "PERFORMANCE")


@dataclass(frozen=True)
class FuzzProfile:
    """A named weighting over the seven timeline event kinds."""

    name: str
    #: Event kind (the :attr:`TimelineEvent.KIND` tag) to relative weight.
    #: Kinds that are infeasible in the current lifecycle state are simply
    #: excluded from the draw; the weights renormalise over what remains.
    weights: Mapping[str, float]


#: The built-in generator profiles, keyed by name.
FUZZ_PROFILES: Dict[str, FuzzProfile] = {
    profile.name: profile
    for profile in (
        FuzzProfile(
            name="churn-heavy",
            weights={
                "vm-arrived": 4.0,
                "vm-departed": 4.0,
                "reliability-mode-changed": 2.0,
                "policy-changed": 1.0,
                "core-failed": 0.5,
                "core-repaired": 0.5,
                "fault-rate-burst": 0.5,
            },
        ),
        FuzzProfile(
            name="failure-heavy",
            weights={
                "core-failed": 4.0,
                "core-repaired": 2.0,
                "fault-rate-burst": 2.0,
                "policy-changed": 1.0,
                "reliability-mode-changed": 1.0,
                "vm-arrived": 0.5,
                "vm-departed": 0.5,
            },
        ),
        FuzzProfile(
            name="mixed",
            weights={
                "core-failed": 1.0,
                "core-repaired": 1.0,
                "vm-arrived": 1.0,
                "vm-departed": 1.0,
                "policy-changed": 1.0,
                "reliability-mode-changed": 1.0,
                "fault-rate-burst": 1.0,
            },
        ),
    )
}

#: Profile names in presentation order.
PROFILE_NAMES: Tuple[str, ...] = tuple(FUZZ_PROFILES)


@dataclass(frozen=True)
class FuzzVm:
    """One VM of a generated roster."""

    name: str
    workload: str
    vcpus: int
    #: A :class:`repro.virt.vcpu.ReliabilityMode` member name.
    mode: str
    present_at_start: bool


@dataclass(frozen=True)
class FuzzScenario:
    """One generated scenario: everything a fuzz cell simulates.

    The scenario's canonical JSON form (:meth:`to_json`) is folded into the
    job params, so the cell's cache key -- and therefore the cached result
    -- changes whenever the generator does.
    """

    profile: str
    case: int
    seed: int
    policy: str
    total_cycles: int
    warmup_cycles: int
    roster: Tuple[FuzzVm, ...]
    timeline: Timeline

    @property
    def case_id(self) -> str:
        """The replayable identity, ``profile:case:seed``."""
        return f"{self.profile}:{self.case}:{self.seed}"

    def to_json(self) -> str:
        """Canonical JSON form: compact separators, sorted keys."""
        payload = {
            "profile": self.profile,
            "case": self.case,
            "seed": self.seed,
            "policy": self.policy,
            "total_cycles": self.total_cycles,
            "warmup_cycles": self.warmup_cycles,
            "roster": [
                {
                    "name": vm.name,
                    "workload": vm.workload,
                    "vcpus": vm.vcpus,
                    "mode": vm.mode,
                    "present_at_start": vm.present_at_start,
                }
                for vm in self.roster
            ],
            "timeline": self.timeline.to_dicts(),
        }
        return json.dumps(payload, sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, serialized: str) -> "FuzzScenario":
        """Rebuild a scenario from its canonical JSON form."""
        try:
            payload = json.loads(serialized)
        except json.JSONDecodeError as error:
            raise ExperimentError(f"malformed fuzz scenario: {error}") from None
        if not isinstance(payload, dict):
            raise ExperimentError("a serialized fuzz scenario must be a JSON object")
        try:
            return cls(
                profile=str(payload["profile"]),
                case=int(payload["case"]),
                seed=int(payload["seed"]),
                policy=str(payload["policy"]),
                total_cycles=int(payload["total_cycles"]),
                warmup_cycles=int(payload["warmup_cycles"]),
                roster=tuple(
                    FuzzVm(
                        name=str(entry["name"]),
                        workload=str(entry["workload"]),
                        vcpus=int(entry["vcpus"]),
                        mode=str(entry["mode"]),
                        present_at_start=bool(entry["present_at_start"]),
                    )
                    for entry in payload["roster"]
                ),
                timeline=Timeline.from_dicts(payload["timeline"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExperimentError(f"malformed fuzz scenario: {error!r}") from None


def parse_case_id(case_id: str) -> Tuple[str, int, int]:
    """Split a ``profile:case:seed`` case id, validating each part."""
    parts = case_id.split(":")
    if len(parts) != 3:
        raise ExperimentError(
            f"malformed case id {case_id!r} (expected 'profile:case:seed')"
        )
    profile, case_text, seed_text = parts
    if profile not in FUZZ_PROFILES:
        known = ", ".join(PROFILE_NAMES)
        raise ExperimentError(
            f"unknown fuzz profile {profile!r} in case id (known: {known})"
        )
    try:
        case = int(case_text)
        seed = int(seed_text)
    except ValueError:
        raise ExperimentError(
            f"malformed case id {case_id!r}: case and seed must be integers"
        ) from None
    if case < 0 or seed < 0:
        raise ExperimentError(
            f"malformed case id {case_id!r}: case and seed must be non-negative"
        )
    return profile, case, seed


# ===================================================================== #
# Generation
# ===================================================================== #


class _LifecycleModel:
    """The generator's model of the machine state as events apply in order."""

    def __init__(self, roster: Tuple[FuzzVm, ...], num_cores: int) -> None:
        self.active: Set[str] = {vm.name for vm in roster if vm.present_at_start}
        self.inactive: Set[str] = {vm.name for vm in roster if not vm.present_at_start}
        self.retired: Set[int] = set()
        self.num_cores = num_cores

    def feasible_kinds(self) -> List[str]:
        kinds = ["policy-changed", "reliability-mode-changed", "fault-rate-burst"]
        if self.inactive:
            kinds.append("vm-arrived")
        if len(self.active) >= 2:
            kinds.append("vm-departed")
        # Keep a margin above the machine's last-healthy-core guard so a
        # DMR pair can still form on the survivors.
        if self.num_cores - len(self.retired) >= 3:
            kinds.append("core-failed")
        if self.retired:
            kinds.append("core-repaired")
        return kinds


def _draw_event(
    kind: str,
    cycle: int,
    model: _LifecycleModel,
    roster: Tuple[FuzzVm, ...],
    rng: DeterministicRng,
) -> TimelineEvent:
    """Build one valid event of the chosen kind and update the model."""
    if kind == "vm-arrived":
        name = rng.choice(sorted(model.inactive))
        model.inactive.discard(name)
        model.active.add(name)
        return VmArrived(cycle=cycle, vm_name=name)
    if kind == "vm-departed":
        name = rng.choice(sorted(model.active))
        model.active.discard(name)
        model.inactive.add(name)
        return VmDeparted(cycle=cycle, vm_name=name)
    if kind == "core-failed":
        healthy = sorted(set(range(model.num_cores)) - model.retired)
        core = rng.choice(healthy)
        model.retired.add(core)
        return CoreFailed(cycle=cycle, core_id=core)
    if kind == "core-repaired":
        core = rng.choice(sorted(model.retired))
        model.retired.discard(core)
        return CoreRepaired(cycle=cycle, core_id=core)
    if kind == "policy-changed":
        return PolicyChanged(cycle=cycle, policy=rng.choice(POLICY_POOL))
    if kind == "reliability-mode-changed":
        vm = rng.choice([vm.name for vm in roster])
        return ReliabilityModeChanged(cycle=cycle, vm_name=vm, mode=rng.choice(MODE_POOL))
    if kind == "fault-rate-burst":
        return FaultRateBurst(
            cycle=cycle,
            scale=round(rng.uniform(1.5, 8.0), 4),
            duration_cycles=rng.randint(500, 5_000),
        )
    raise ExperimentError(f"the fuzz generator cannot draw event kind {kind!r}")


def generate_scenario(
    settings: ExperimentSettings, profile: str, case: int, seed: int
) -> FuzzScenario:
    """Generate one random-but-valid scenario, deterministically.

    Pure function of ``(settings, profile, case, seed)``: every random draw
    comes from a CRC-forked stream derived from the case identity, so two
    processes (or two backends) always generate byte-identical scenarios.
    """
    try:
        spec = FUZZ_PROFILES[profile]
    except KeyError:
        known = ", ".join(PROFILE_NAMES)
        raise ExperimentError(
            f"unknown fuzz profile {profile!r} (known: {known})"
        ) from None
    root = DeterministicRng(seed).fork(f"fuzz:{profile}:{case}")

    horizon_rng = root.fork("horizon")
    total = horizon_rng.randint(
        max(2_000, settings.total_cycles // 4), settings.total_cycles
    )
    warmup = horizon_rng.randint(0, settings.warmup_cycles)

    policy_rng = root.fork("policy")
    policy = policy_rng.choice(POLICY_POOL)

    roster_rng = root.fork("roster")
    workloads = settings.workloads or ("apache",)
    roster = tuple(
        FuzzVm(
            name=f"fuzz{index}",
            workload=roster_rng.choice(workloads),
            vcpus=roster_rng.randint(1, 3),
            mode=roster_rng.choice(MODE_POOL),
            # The machine needs at least one VM in the gang schedule at
            # cycle 0, so the first roster slot is always present.
            present_at_start=index == 0 or roster_rng.chance(0.6),
        )
        for index in range(roster_rng.randint(2, 4))
    )

    timeline_rng = root.fork("timeline")
    end = warmup + total
    count = timeline_rng.randint(2, 10)
    # Up to 20% of the window beyond the horizon: pending events exercise
    # the applied/pending ledger without ever being applied.
    cycles = sorted(timeline_rng.randint(0, int(end * 1.2)) for _ in range(count))
    model = _LifecycleModel(roster, settings.config().num_cores)
    events: List[TimelineEvent] = []
    for cycle in cycles:
        kinds = model.feasible_kinds()
        weights = [spec.weights.get(kind, 0.0) for kind in kinds]
        if sum(weights) <= 0.0:
            weights = [1.0] * len(kinds)
        kind = timeline_rng.weighted_choice(kinds, weights)
        events.append(_draw_event(kind, cycle, model, roster, timeline_rng))

    return FuzzScenario(
        profile=profile,
        case=case,
        seed=seed,
        policy=policy,
        total_cycles=total,
        warmup_cycles=warmup,
        roster=roster,
        timeline=Timeline.of(*events),
    )
