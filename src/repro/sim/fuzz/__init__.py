"""Property-based scenario fuzzing for the dynamic-lifecycle machinery.

The fuzz subsystem turns the cell engine into a continuous correctness
harness: :mod:`repro.sim.fuzz.generate` draws random-but-valid dynamic
scenarios (machine roster + ordered :class:`~repro.sim.timeline.Timeline`)
from a seeded grammar, :mod:`repro.sim.fuzz.oracles` checks machine-level
invariants against every run, :mod:`repro.sim.fuzz.shrink` reduces a failing
scenario to a minimal reproducing timeline, and :mod:`repro.sim.fuzz.cells`
plus :mod:`repro.sim.fuzz.spec` package each fuzz case as an ordinary
cacheable :class:`~repro.sim.jobs.ExperimentJob` behind the always-on
``fuzz`` experiment spec.
"""
