"""Fuzz cells: the ``fuzz`` job kind, its frame samples and case replay.

Every fuzz case is one ordinary :class:`~repro.sim.jobs.ExperimentJob`: the
job's params carry the generated scenario's canonical JSON, so the cell is a
pure, cacheable function of ``(settings, profile, case, seed)`` -- the
engine's backends parallelise a campaign for free and the packed store
caches clean cases.  When a case breaches an oracle, the executor shrinks it
*inside the cell* and returns the ready-to-commit repro snippet with the
metrics, so shrinking is cached and byte-identical across backends too.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.core.machine import MixedModeMachine, VmSpec
from repro.cpu.fastpath import FastTimingModel
from repro.errors import (
    ConfigurationError,
    ExperimentError,
    SchedulingError,
    SimulationError,
)
from repro.sim.fuzz.generate import (
    FuzzScenario,
    generate_scenario,
    parse_case_id,
)
from repro.sim.fuzz.oracles import (
    ORACLES,
    InvariantViolation,
    OracleContext,
    observe_run,
    planted_arrival_oracle,
    run_oracles,
)
from repro.sim.fuzz.shrink import repro_snippet, shrink
from repro.sim.jobs import ExperimentJob, register_job_kind
from repro.sim.settings import ExperimentSettings
from repro.virt.vcpu import ReliabilityMode

__all__ = [
    "check_scenario",
    "execute_fuzz_cell",
    "fuzz_jobs",
    "fuzz_samples",
    "oracle_metric_names",
    "reproduce_case",
    "scenario_machine",
]

#: The extra oracle planted cells run (see ``planted_arrival_oracle``).
PLANTED_ORACLE = "planted-arrival"


# ===================================================================== #
# Enumeration
# ===================================================================== #


def fuzz_jobs(
    settings: ExperimentSettings, planted: bool = False
) -> List[ExperimentJob]:
    """Every (profile, case, seed) cell of the fuzz campaign."""
    cell = settings.cell_settings()
    jobs: List[ExperimentJob] = []
    for profile in settings.fuzz_profiles:
        for case in range(settings.fuzz_cases):
            for seed in settings.seeds:
                scenario = generate_scenario(settings, profile, case, seed)
                params: Dict[str, object] = {
                    "case": case,
                    "profile": profile,
                    "scenario": scenario.to_json(),
                }
                if planted:
                    params["planted"] = True
                jobs.append(
                    ExperimentJob(
                        kind="fuzz",
                        workload=scenario.roster[0].workload,
                        variant=profile,
                        seed=seed,
                        settings=cell,
                        params=tuple(sorted(params.items())),
                    )
                )
    return jobs


# ===================================================================== #
# Execution (one scenario's simulation + oracle sweep + shrink)
# ===================================================================== #


def scenario_machine(
    settings: ExperimentSettings, scenario: FuzzScenario
) -> MixedModeMachine:
    """Build the machine one scenario describes."""
    specs = [
        VmSpec(
            name=vm.name,
            workload=vm.workload,
            num_vcpus=vm.vcpus,
            reliability=ReliabilityMode[vm.mode],
            phase_scale=settings.phase_scale,
            footprint_scale=settings.footprint_scale,
            present_at_start=vm.present_at_start,
        )
        for vm in scenario.roster
    ]
    machine = MixedModeMachine(
        config=settings.config(),
        vm_specs=specs,
        policy=scenario.policy,
        seed=scenario.seed,
    )
    if settings.fidelity == "fast":
        machine.timing_model = FastTimingModel(machine.timing_model)
    return machine


def check_scenario(
    settings: ExperimentSettings, scenario: FuzzScenario, planted: bool = False
) -> Tuple[List[InvariantViolation], int]:
    """Run one scenario and every oracle; return (violations, events applied).

    A simulator crash is itself an invariant breach -- valid-by-construction
    scenarios must never raise -- and is reported as a ``no-crash``
    violation so the shrinker can target it like any other oracle.
    """
    machine = scenario_machine(settings, scenario)
    options = replace(
        settings.options(),
        total_cycles=scenario.total_cycles,
        warmup_cycles=scenario.warmup_cycles,
    )
    try:
        result, observations = observe_run(
            machine, options, timeline=scenario.timeline
        )
    except (SimulationError, ConfigurationError, SchedulingError) as error:
        violation = InvariantViolation(
            oracle="no-crash",
            case_id=scenario.case_id,
            detail=f"{type(error).__name__}: {error}",
        )
        return [violation], 0
    context = OracleContext(
        machine=machine,
        result=result,
        options=options,
        timeline=scenario.timeline,
        observations=observations,
        roster_names=tuple(vm.name for vm in scenario.roster),
        initial_active=frozenset(
            vm.name for vm in scenario.roster if vm.present_at_start
        ),
    )
    extra = {PLANTED_ORACLE: planted_arrival_oracle} if planted else None
    violations = run_oracles(context, scenario.case_id, extra=extra)
    return violations, result.timeline_events_applied


def oracle_metric_names(planted: bool = False) -> List[str]:
    """The per-oracle violation metric columns, in sorted oracle order."""
    names = sorted(ORACLES) + ["no-crash"]
    if planted:
        names.append(PLANTED_ORACLE)
    return ["viol_" + name.replace("-", "_") for name in sorted(names)]


@register_job_kind("fuzz")
def execute_fuzz_cell(job: ExperimentJob) -> Dict[str, object]:
    """Check one generated scenario against every invariant oracle.

    Clean cases return zeroed violation counters.  A breached case is shrunk
    to a minimal reproduction right here, so the expensive search runs once,
    is cached with the metrics, and stays byte-identical across backends;
    the ``repro`` metric carries the ready-to-commit snippet.
    """
    settings = job.settings
    if settings is None:
        raise ExperimentError(f"job {job.label} needs ExperimentSettings")
    scenario = FuzzScenario.from_json(str(job.param("scenario")))
    planted = bool(job.param("planted", False))
    violations, events_applied = check_scenario(settings, scenario, planted=planted)
    metrics: Dict[str, object] = {
        "cases": 1,
        "events": len(scenario.timeline),
        "events_applied": events_applied,
        "violations": len(violations),
        "shrink_steps": 0,
        "case_id": scenario.case_id,
        "repro": "",
    }
    for name in oracle_metric_names(planted=True):
        metrics[name] = 0
    for violation in violations:
        metrics["viol_" + violation.oracle.replace("-", "_")] += 1
    if violations:
        shrunk = shrink(
            scenario,
            lambda candidate: check_scenario(settings, candidate, planted=planted)[0],
        )
        metrics["shrink_steps"] = shrunk.steps
        metrics["repro"] = repro_snippet(shrunk.scenario, shrunk.violations)
    return metrics


# ===================================================================== #
# Frame samples (one sample per case cell, keyed by profile)
# ===================================================================== #


def fuzz_samples(
    request,
    jobs: Sequence[ExperimentJob],
    results: Mapping[ExperimentJob, Mapping[str, object]],
) -> Iterator[Tuple[Tuple[object, ...], Dict[str, object]]]:
    """One numeric sample per cell; the schema sums them per profile."""
    for job in jobs:
        metrics = results[job]
        yield (job.variant,), {
            name: value
            for name, value in metrics.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }


# ===================================================================== #
# Verbose replay (`repro fuzz --reproduce <case-id>`)
# ===================================================================== #


def reproduce_case(
    settings: ExperimentSettings, case_id: str, planted: bool = False
) -> int:
    """Regenerate one case and replay it verbosely; return an exit code.

    Raises :class:`~repro.errors.ExperimentError` on a malformed or unknown
    case id (the CLI maps that to exit code 2); returns 1 when the case
    breaches an oracle (after printing the shrunk reproduction) and 0 when
    it is clean.
    """
    profile, case, seed = parse_case_id(case_id)
    scenario = generate_scenario(settings, profile, case, seed)
    print(f"fuzz case {scenario.case_id}")
    print(
        f"  policy={scenario.policy}  total_cycles={scenario.total_cycles}  "
        f"warmup_cycles={scenario.warmup_cycles}"
    )
    print("  roster:")
    for vm in scenario.roster:
        presence = "present" if vm.present_at_start else "deferred"
        print(
            f"    {vm.name}: workload={vm.workload} vcpus={vm.vcpus} "
            f"mode={vm.mode} ({presence})"
        )
    print(f"  timeline ({len(scenario.timeline)} events):")
    for event in scenario.timeline.events:
        print(f"    {event!r}")
    violations, events_applied = check_scenario(settings, scenario, planted=planted)
    print(f"  events applied: {events_applied}/{len(scenario.timeline)}")
    breached = {violation.oracle for violation in violations}
    names = sorted(ORACLES) + (["no-crash"] if "no-crash" in breached else [])
    if planted:
        names.append(PLANTED_ORACLE)
    for name in sorted(names):
        status = "VIOLATION" if name in breached else "ok"
        print(f"  oracle {name}: {status}")
    for violation in violations:
        print(f"    {violation}")
    if not violations:
        print("case is clean")
        return 0
    shrunk = shrink(
        scenario,
        lambda candidate: check_scenario(settings, candidate, planted=planted)[0],
    )
    print(
        f"shrunk in {shrunk.steps} step(s) ({shrunk.attempts} candidate runs) "
        f"to {len(shrunk.scenario.timeline)} event(s):"
    )
    print(repro_snippet(shrunk.scenario, shrunk.violations))
    return 1
