"""Invariant oracles: machine-level checks run against every fuzz case.

Each oracle inspects one finished run -- the
:class:`~repro.sim.results.SimulationResult`, the machine's final state and
a white-box trace of per-quantum observations -- and reports every breach as
a structured :class:`InvariantViolation`.  The white-box trace comes from
:class:`ObservedSimulator`, a :class:`~repro.sim.simulator.Simulator`
subclass that snapshots the mapping plan, the retired-core set and the
timeline position at the execute phase of every quantum (transitions are
charged before the execute phase runs, so the snapshot sees exactly what the
timing model is about to execute).

The oracles are deliberately *timing-model agnostic*: they check budget
accounting, lifecycle conservation and plan-shape invariants, none of which
depend on instruction-level behaviour -- so the same oracles hold on the
accurate and the calibrated fast fidelity tier, and a fuzz cell's metrics
are tier-stable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.sim.results import SimulationResult
from repro.sim.simulator import SimulationOptions, Simulator
from repro.sim.timeline import Timeline

__all__ = [
    "ORACLES",
    "InvariantViolation",
    "ObservedSimulator",
    "OracleContext",
    "QuantumObservation",
    "observe_run",
    "planted_arrival_oracle",
    "run_oracles",
]


@dataclass(frozen=True)
class InvariantViolation:
    """One breach of one oracle's invariant, on one case."""

    oracle: str
    case_id: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.oracle}] {self.case_id}: {self.detail}"


@dataclass(frozen=True)
class QuantumObservation:
    """White-box snapshot of one quantum, taken at the execute phase."""

    cycle: int
    vm_id: int
    #: Whether the quantum falls inside the measured window.
    measuring: bool
    policy_name: str
    #: Whether the policy's plans are pure functions of its inputs (stateful
    #: policies like the duty-cycled adaptive one may legitimately re-pair
    #: between quanta without any event in between).
    stateless: bool
    #: DMR pairings in the executed plan: (vcpu_id, primary, secondary).
    pairs: Tuple[Tuple[int, int, int], ...]
    #: Every core the plan occupies (assignments plus reserved partners).
    occupied: FrozenSet[int]
    #: The machine's retired-core set when the quantum executed.
    retired: FrozenSet[int]
    #: Timeline events applied before this quantum ran.
    events_applied: int


class ObservedSimulator(Simulator):
    """A simulator that records a :class:`QuantumObservation` per quantum."""

    def __init__(self, machine, options, timeline=None) -> None:
        super().__init__(machine, options, timeline=timeline)
        self.observations: List[QuantumObservation] = []

    def _phase_execute(self, vm, plan, effective_budget, cycle):
        self.observations.append(
            QuantumObservation(
                cycle=cycle,
                vm_id=vm.vm_id,
                measuring=self._measuring,
                policy_name=self.machine.policy.name,
                stateless=self.machine.policy.stateless_plans,
                pairs=tuple(
                    sorted(
                        (
                            placement.vcpu_id,
                            placement.assignment.primary_core,
                            placement.assignment.secondary_core,
                        )
                        for placement in plan.placements
                        if placement.assignment.secondary_core is not None
                    )
                ),
                occupied=frozenset(
                    core
                    for placement in plan.placements
                    for core in placement.occupied_cores
                ),
                retired=self.machine.retired_cores,
                events_applied=self._events_applied,
            )
        )
        super()._phase_execute(vm, plan, effective_budget, cycle)


def observe_run(
    machine, options: SimulationOptions, timeline: Optional[Timeline] = None
) -> Tuple[SimulationResult, List[QuantumObservation]]:
    """Run one machine under observation; return (result, observations)."""
    simulator = ObservedSimulator(machine, options, timeline=timeline)
    result = simulator.run()
    return result, simulator.observations


@dataclass
class OracleContext:
    """Everything the oracles inspect about one finished run."""

    machine: object
    result: SimulationResult
    options: SimulationOptions
    timeline: Timeline
    observations: List[QuantumObservation]
    #: Names of every VM built into the machine (active or deferred).
    roster_names: Tuple[str, ...]
    #: Names active at cycle 0 (``present_at_start``).
    initial_active: FrozenSet[str] = frozenset()
    extra: Dict[str, object] = field(default_factory=dict)


Oracle = Callable[[OracleContext], List[str]]

#: The oracle registry: name -> checker returning violation details.
ORACLES: Dict[str, Oracle] = {}


def oracle(name: str) -> Callable[[Oracle], Oracle]:
    """Register one invariant checker under ``name``."""

    def register(checker: Oracle) -> Oracle:
        ORACLES[name] = checker
        return checker

    return register


def run_oracles(
    context: OracleContext,
    case_id: str,
    extra: Optional[Dict[str, Oracle]] = None,
) -> List[InvariantViolation]:
    """Run every registered oracle (plus ``extra``) against one run."""
    checkers = dict(ORACLES)
    if extra:
        checkers.update(extra)
    violations: List[InvariantViolation] = []
    for name in sorted(checkers):
        for detail in checkers[name](context):
            violations.append(
                InvariantViolation(oracle=name, case_id=case_id, detail=detail)
            )
    return violations


# ===================================================================== #
# The shipped oracles
# ===================================================================== #


@oracle("cycle-accounting")
def check_cycle_accounting(context: OracleContext) -> List[str]:
    """Core-cycle budgets are conserved over the measured window.

    The simulator's quanta tile the measured window exactly, so the nominal
    capacity must equal ``num_cores * total_cycles`` to the cycle; used
    cycles can never exceed the healthy capacity, which can never exceed
    nominal.
    """
    stats = context.result.quantum_stats
    used = float(stats.get("core_cycles_used", 0.0))
    capacity = float(stats.get("core_cycles_capacity", 0.0))
    nominal = float(stats.get("core_cycles_nominal", 0.0))
    details: List[str] = []
    expected = context.machine.config.num_cores * context.result.total_cycles
    if int(nominal) != expected:
        details.append(
            f"nominal core-cycles {int(nominal)} != cores*window {expected}"
        )
    if used > capacity:
        details.append(f"used core-cycles {used} exceed healthy capacity {capacity}")
    if capacity > nominal:
        details.append(f"healthy capacity {capacity} exceeds nominal {nominal}")
    if context.result.total_cycles > 0 and not stats.get("quanta"):
        details.append("a non-empty measured window executed zero quanta")
    return details


@oracle("pause-accounting")
def check_pause_accounting(context: OracleContext) -> List[str]:
    """The two independent paused-VCPU counters agree."""
    from_quanta = int(context.result.quantum_stats.get("paused_vcpus", 0))
    if context.result.paused_vcpu_quanta != from_quanta:
        return [
            f"paused_vcpu_quanta {context.result.paused_vcpu_quanta} != "
            f"quantum_stats paused_vcpus {from_quanta}"
        ]
    return []


@oracle("vm-conservation")
def check_vm_conservation(context: OracleContext) -> List[str]:
    """No VM is lost or duplicated across admit/drain churn.

    The result reports every VM built into the machine exactly once, and the
    machine's final active set equals the initial actives with the applied
    arrive/depart events folded in, in order.
    """
    details: List[str] = []
    reported = sorted(vm.name for vm in context.result.vm_results)
    expected = sorted(context.roster_names)
    if reported != expected:
        details.append(f"result names {reported} != roster {expected}")
    end = context.result.warmup_cycles + context.result.total_cycles
    active = set(context.initial_active)
    for event in context.timeline.sorted_events():
        if event.cycle >= end:
            break
        if event.KIND == "vm-arrived":
            active.add(event.vm_name)
        elif event.KIND == "vm-departed":
            active.discard(event.vm_name)
    final = {vm.name for vm in context.machine.active_vms}
    if final != active:
        details.append(
            f"final active set {sorted(final)} != replayed churn {sorted(active)}"
        )
    return details


@oracle("dmr-pairs")
def check_dmr_pairs(context: OracleContext) -> List[str]:
    """DMR pairs never split without a recorded transition.

    Between two quanta of the same VM with no timeline event in between, a
    stateless policy has no reason to re-pair: the executed plan's DMR
    pairings must be identical.  (Stateful policies may re-pair on their own
    schedule and are exempt; events legitimately force re-planning.)
    """
    details: List[str] = []
    last_by_vm: Dict[int, QuantumObservation] = {}
    for observation in context.observations:
        previous = last_by_vm.get(observation.vm_id)
        if (
            previous is not None
            and observation.stateless
            and previous.stateless
            and observation.policy_name == previous.policy_name
            and observation.events_applied == previous.events_applied
            and observation.pairs != previous.pairs
        ):
            details.append(
                f"VM {observation.vm_id} re-paired at cycle {observation.cycle} "
                f"with no event since cycle {previous.cycle}: "
                f"{previous.pairs} -> {observation.pairs}"
            )
        last_by_vm[observation.vm_id] = observation
    return details


@oracle("retired-cores")
def check_retired_cores(context: OracleContext) -> List[str]:
    """Retired cores never appear in an executed mapping plan."""
    details: List[str] = []
    for observation in context.observations:
        overlap = observation.occupied & observation.retired
        if overlap:
            details.append(
                f"cycle {observation.cycle}: retired core(s) "
                f"{sorted(overlap)} scheduled by the executed plan"
            )
    return details


@oracle("timeline-ledger")
def check_timeline_ledger(context: OracleContext) -> List[str]:
    """Applied + pending events account for the whole timeline, per kind."""
    result = context.result
    details: List[str] = []
    total = len(context.timeline)
    if result.timeline_events_applied + result.timeline_events_pending != total:
        details.append(
            f"applied {result.timeline_events_applied} + pending "
            f"{result.timeline_events_pending} != timeline length {total}"
        )
    if sum(result.timeline_stats.values()) != result.timeline_events_applied:
        details.append(
            f"per-kind stats {result.timeline_stats} sum to "
            f"{sum(result.timeline_stats.values())}, not the applied count "
            f"{result.timeline_events_applied}"
        )
    end = result.warmup_cycles + result.total_cycles
    expected: Dict[str, int] = {}
    for event in context.timeline.sorted_events():
        if event.cycle < end:
            expected[event.KIND] = expected.get(event.KIND, 0) + 1
    if dict(sorted(expected.items())) != dict(result.timeline_stats):
        details.append(
            f"applied-by-kind {dict(result.timeline_stats)} != events inside "
            f"the horizon {dict(sorted(expected.items()))}"
        )
    return details


#: Violation kinds that can only come from an injected fault.  The
#: protection-path kinds (``TLB_DENIED``, ``PAB_BLOCKED``) fire fault-free
#: -- e.g. a ``ReliabilityModeChanged`` flip to performance mode leaves the
#: VM's pages reliable-only, so the PAB rightly blocks its own stores.
FAULT_ONLY_KINDS = (
    "DMR_DETECTED",
    "TRANSITION_VERIFY_FAILED",
    "SILENT_CORRUPTION",
)


@oracle("fault-detection")
def check_fault_detection(context: OracleContext) -> List[str]:
    """Detection accounting is consistent with the machine's injector.

    A machine with no fault injector cannot raise faults, so nothing may be
    *detected* (and nothing silently corrupted), regardless of how many
    ``FaultRateBurst`` windows the timeline opened (they are
    counted-no-effect events there).
    """
    if context.machine.fault_injector is not None:
        return []
    counts = context.result.violation_counts
    faulty = {
        kind: counts[kind] for kind in FAULT_ONLY_KINDS if counts.get(kind)
    }
    if faulty:
        return [
            f"machine has no fault injector but recorded fault detections {faulty}"
        ]
    return []


def planted_arrival_oracle(context: OracleContext) -> List[str]:
    """The planted bug: 'no VM may ever arrive mid-run'.

    A deliberately false invariant used by the shrinker tests and the CI
    planted-violation leg: any applied ``vm-arrived`` event breaches it, and
    the minimal reproducing timeline is exactly one arrival.
    """
    arrivals = int(context.result.timeline_stats.get("vm-arrived", 0))
    if arrivals:
        return [f"{arrivals} vm-arrived event(s) applied"]
    return []
