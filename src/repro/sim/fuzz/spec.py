"""The always-on ``fuzz`` experiment spec.

Registers the fuzz campaign in the central ``EXPERIMENTS`` registry, so
``repro fuzz --cases N --profile mixed --seeds ...`` runs through every
engine backend, the campaign joins ``run-all`` / ``export`` / ``diff``
documents, and ``repro list`` shows the profiles axis -- all without
touching the CLI beyond the ``--reproduce`` replay path.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Dict, Tuple

from repro.sim.frames import FrameView, MetricColumn, MetricSchema
from repro.sim.fuzz.cells import fuzz_jobs, fuzz_samples, oracle_metric_names
from repro.sim.fuzz.generate import PROFILE_NAMES
from repro.sim.settings import ExperimentSettings
from repro.sim.specs import (
    ExperimentSpec,
    ParameterGrid,
    SpecOption,
    SpecRequest,
    parse_positive_int,
    register_experiment,
)

__all__ = ["parse_profile_list"]


def parse_profile_list(value: str) -> Tuple[str, ...]:
    """A comma list of fuzz profile names, validated against the built-ins."""
    names = tuple(
        dict.fromkeys(part.strip() for part in value.split(",") if part.strip())
    )
    if not names:
        raise argparse.ArgumentTypeError("needs at least one profile name")
    unknown = [name for name in names if name not in PROFILE_NAMES]
    if unknown:
        known = ", ".join(PROFILE_NAMES)
        raise argparse.ArgumentTypeError(
            f"unknown profile(s) {', '.join(unknown)} (known: {known})"
        )
    return names


def _fuzz_settings(request: SpecRequest) -> ExperimentSettings:
    """The request's settings with the fuzz flags folded in.

    With no explicit flags this is the settings object itself, which is what
    lets ``run_all_experiments`` and the distributed coordinator size the
    campaign purely through settings (the shared enumeration path passes no
    per-spec options)."""
    overrides: Dict[str, object] = {}
    cases = request.option("cases")
    if cases is not None:
        overrides["fuzz_cases"] = int(cases)
    profiles = request.option("profile")
    if profiles is not None:
        overrides["fuzz_profiles"] = tuple(profiles)
    settings = request.settings
    return dataclasses.replace(settings, **overrides) if overrides else settings


def _fuzz_grid(request: SpecRequest) -> ParameterGrid:
    settings = _fuzz_settings(request)
    return ParameterGrid.of(
        ("profile", settings.fuzz_profiles),
        ("case", tuple(range(settings.fuzz_cases))),
        ("seed", settings.seeds),
    )


def _count_metric(name: str, label: str) -> MetricColumn:
    return MetricColumn(
        name, dtype="int", aggregate="sum", label=label, fmt="{:d}"
    )


def _fuzz_schema(request: SpecRequest) -> MetricSchema:
    settings = _fuzz_settings(request)
    planted = bool(request.option("planted"))
    oracle_columns = tuple(
        _count_metric(name, name[len("viol_"):].replace("_", "-"))
        for name in oracle_metric_names(planted=planted)
    )
    return MetricSchema(
        keys=("profile",),
        metrics=(
            _count_metric("cases", "cases"),
            _count_metric("events", "events generated"),
            _count_metric("events_applied", "events applied"),
            _count_metric("violations", "violations"),
            _count_metric("shrink_steps", "shrink steps"),
        )
        + oracle_columns,
        views=(
            FrameView(
                title=(
                    f"Fuzz campaign: {settings.fuzz_cases} cases per "
                    "(profile, seed), invariant oracles on every run"
                ),
                metrics=(
                    "cases",
                    "events",
                    "events_applied",
                    "violations",
                    "shrink_steps",
                ),
            ),
            FrameView(
                title="Violations by oracle",
                metrics=tuple(column.name for column in oracle_columns),
            ),
        ),
    )


register_experiment(
    ExperimentSpec(
        name="fuzz",
        title="property-based scenario fuzzing with invariant oracles",
        description=(
            "Seeded generation of random-but-valid dynamic scenarios (VM "
            "churn, core failures and repairs, policy and reliability hot "
            "swaps, fault-rate bursts) checked against machine-level "
            "invariant oracles; breached cases are shrunk to a minimal "
            "reproducing timeline inside the cell. Each case is one "
            "cacheable engine job, so campaigns parallelise across every "
            "backend and clean cases warm-start from the packed store."
        ),
        grid=_fuzz_grid,
        enumerate_jobs=lambda request: fuzz_jobs(
            _fuzz_settings(request), planted=bool(request.option("planted"))
        ),
        schema=_fuzz_schema,
        cell_samples=lambda request, jobs, results: fuzz_samples(
            request, jobs, results
        ),
        options=(
            SpecOption(
                name="cases",
                flag="--cases",
                parse=parse_positive_int,
                metavar="N",
                help="scenarios per (profile, seed) (default: the settings')",
            ),
            SpecOption(
                name="profile",
                flag="--profile",
                parse=parse_profile_list,
                metavar="P1,P2,...",
                help=(
                    "generator profiles to sweep, e.g. 'mixed' or "
                    "'churn-heavy,failure-heavy' (default: the settings')"
                ),
            ),
            SpecOption(
                name="planted",
                flag="--planted",
                is_flag=True,
                help=(
                    "also run the deliberately false planted oracle (no VM "
                    "may arrive mid-run) -- exercises the shrinker end to end"
                ),
            ),
            SpecOption(
                name="reproduce",
                flag="--reproduce",
                metavar="CASE_ID",
                help=(
                    "replay one case (profile:case:seed) verbosely instead "
                    "of running the campaign; exits 1 if it breaches an "
                    "oracle, 2 on an unknown case id"
                ),
            ),
        ),
    )
)
