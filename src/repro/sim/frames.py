"""Typed, schema-driven result frames: the uniform results layer.

Every evaluation of the reproduction shares one shape -- a few *key* axes
(workload, configuration, failed-core count, ...) crossed with a set of
*metric* columns aggregated over seeds.  :class:`MetricSchema` declares that
shape once per experiment -- key columns, metric columns with a dtype, unit
and aggregation rule -- and :meth:`ResultFrame.assemble` is the one generic
fold from the runner's raw ``(key, metrics)`` samples into an aggregated
frame, using the confidence intervals of :mod:`repro.common.stats` in a
single place instead of one hand-written loop per experiment family.

Everything downstream is *generated* from the schema:

* :meth:`ResultFrame.to_table` renders the frame as plain-text tables (the
  schema's :class:`FrameView` declarations reproduce the paper's pivoted,
  normalised presentation; without views a flat table is emitted);
* :meth:`ResultFrame.to_json` / :meth:`ResultFrame.from_json` are the
  canonical, byte-stable serialization -- what ``repro run-all --json``
  emits and ``repro diff`` consumes;
* :meth:`ResultFrame.to_csv` (and :func:`frames_to_csv` for several frames
  at once) export the same data for downstream analysis;
* :func:`diff_frames` / :func:`diff_documents` compare two runs with
  numeric tolerances, which is what lets CI machine-check the evaluation
  against a committed baseline.

The frame layer is deliberately independent of the experiment machinery: it
imports only the stats helpers and the table renderer, so it can be unit
tested (``tests/test_frames.py``) without running a single simulation.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.analysis.tables import TextTable
from repro.common.stats import ConfidenceInterval, confidence_interval_95, mean
from repro.errors import ExperimentError

__all__ = [
    "FRAME_SCHEMA_VERSION",
    "AGGREGATES",
    "DTYPES",
    "MetricColumn",
    "FrameView",
    "MetricSchema",
    "ResultFrame",
    "FrameDrift",
    "diff_frames",
    "diff_documents",
    "frames_document",
    "document_frames",
    "frames_to_csv",
]

#: Version of the frame serialization format.  Bump on incompatible changes
#: to :meth:`ResultFrame.to_json`; ``repro diff`` refuses mismatched
#: baselines instead of mis-reading them.
FRAME_SCHEMA_VERSION = 1

#: How a metric column folds its per-cell samples into one frame cell.
AGGREGATES = ("mean_ci", "mean", "sum", "last", "derive")

#: Scalar types a column may carry.
DTYPES = ("float", "int", "str")

#: One frame cell: a scalar, or a :class:`ConfidenceInterval` for
#: ``mean_ci`` columns.
CellValue = Union[None, bool, int, float, str, ConfidenceInterval]


# ===================================================================== #
# Schema declarations
# ===================================================================== #


@dataclass(frozen=True)
class MetricColumn:
    """One metric column of a :class:`MetricSchema`."""

    #: Column name; matches the metric key in the runner's sample dicts.
    name: str
    #: Scalar type of the (aggregated) values.
    dtype: str = "float"
    #: Physical unit for presentation ("cycles", "instr/cycle", "").
    unit: str = ""
    #: Aggregation rule over the samples of one key group: ``mean_ci``
    #: (mean with 95% CI), ``mean``, ``sum``, ``last`` (single-sample
    #: measurements), or ``derive`` (computed from the aggregated row).
    aggregate: str = "mean_ci"
    #: Display label for generated tables (defaults to the name).
    label: str = ""
    #: Optional format string applied to numeric cells in tables.
    fmt: Optional[str] = None
    #: For ``derive`` columns: row dict in, derived value out.  Not
    #: serialized -- deserialized frames carry the materialized values.
    derive: Optional[Callable[[Mapping[str, CellValue]], CellValue]] = None

    def __post_init__(self) -> None:
        if self.aggregate not in AGGREGATES:
            raise ExperimentError(
                f"metric {self.name!r}: unknown aggregate {self.aggregate!r} "
                f"(expected one of {', '.join(AGGREGATES)})"
            )
        if self.dtype not in DTYPES:
            raise ExperimentError(
                f"metric {self.name!r}: unknown dtype {self.dtype!r} "
                f"(expected one of {', '.join(DTYPES)})"
            )

    @property
    def display(self) -> str:
        """The table header for this column."""
        return self.label or self.name

    def to_dict(self) -> Dict[str, object]:
        """Declarative JSON description (the ``derive`` callable is not
        serializable and is represented only by its aggregation rule)."""
        return {
            "name": self.name,
            "dtype": self.dtype,
            "unit": self.unit,
            "aggregate": self.aggregate,
            "label": self.label,
            "fmt": self.fmt,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricColumn":
        return cls(
            name=str(payload["name"]),
            dtype=str(payload.get("dtype", "float")),
            unit=str(payload.get("unit", "")),
            aggregate=str(payload.get("aggregate", "mean_ci")),
            label=str(payload.get("label", "")),
            fmt=payload.get("fmt"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class FrameView:
    """One generated table of a frame (the paper's presentation shapes).

    Without a ``pivot`` the view is a flat table: key columns followed by
    the selected metric columns.  With a ``pivot`` the named key column is
    spread across the header (workloads down the side, configurations
    across the top) showing one metric -- or several, each as its own
    labelled series row -- optionally normalised to one pivot value.
    """

    title: str
    #: Metric columns shown, in order.
    metrics: Tuple[str, ...]
    #: Key column spread across the table header.
    pivot: Optional[str] = None
    #: Pivot value whose mean normalises each row (means only; skipped
    #: when the value is absent from the frame, e.g. a restricted sweep).
    normalize_to: Optional[object] = None
    #: Display labels of the metric series under a multi-metric pivot.
    series_labels: Tuple[str, ...] = ()
    #: Header of the series-label column under a multi-metric pivot.
    series_column: str = "series"
    #: Pivot-value header: a format string (``"rate {:g}"``) or a callable;
    #: callables are presentation-only and are not serialized.
    pivot_header: Union[None, str, Callable[[object], str]] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "title": self.title,
            "metrics": list(self.metrics),
            "pivot": self.pivot,
            "normalize_to": self.normalize_to,
            "series_labels": list(self.series_labels),
            "series_column": self.series_column,
            "pivot_header": self.pivot_header if isinstance(self.pivot_header, str) else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "FrameView":
        return cls(
            title=str(payload["title"]),
            metrics=tuple(str(m) for m in payload.get("metrics", ())),
            pivot=payload.get("pivot"),  # type: ignore[arg-type]
            normalize_to=payload.get("normalize_to"),
            series_labels=tuple(str(s) for s in payload.get("series_labels", ())),
            series_column=str(payload.get("series_column", "series")),
            pivot_header=payload.get("pivot_header"),  # type: ignore[arg-type]
        )


@dataclass(frozen=True)
class MetricSchema:
    """The declared shape of one experiment's results.

    ``keys`` name the grid axes a frame row is identified by (the seed axis
    is aggregated over and never appears); ``metrics`` declare the value
    columns; ``views`` the generated table presentations.
    """

    keys: Tuple[str, ...]
    metrics: Tuple[MetricColumn, ...]
    views: Tuple[FrameView, ...] = ()

    def __post_init__(self) -> None:
        names = [column.name for column in self.metrics]
        if len(set(names)) != len(names):
            raise ExperimentError(f"duplicate metric columns in schema: {names}")
        overlap = set(self.keys) & set(names)
        if overlap:
            raise ExperimentError(
                f"columns {sorted(overlap)} are declared as both key and metric"
            )
        for view in self.views:
            missing = [m for m in view.metrics if m not in names]
            if missing:
                raise ExperimentError(
                    f"view {view.title!r} references unknown metrics {missing}"
                )
            if view.pivot is not None and view.pivot not in self.keys:
                raise ExperimentError(
                    f"view {view.title!r} pivots on unknown key {view.pivot!r}"
                )
            if view.series_labels and len(view.series_labels) != len(view.metrics):
                raise ExperimentError(
                    f"view {view.title!r}: series_labels must match metrics"
                )

    def metric(self, name: str) -> MetricColumn:
        """One metric column by name."""
        for column in self.metrics:
            if column.name == name:
                return column
        raise ExperimentError(f"schema has no metric column named {name!r}")

    def metric_names(self) -> Tuple[str, ...]:
        return tuple(column.name for column in self.metrics)

    def to_dict(self) -> Dict[str, object]:
        return {
            "keys": list(self.keys),
            "metrics": [column.to_dict() for column in self.metrics],
            "views": [view.to_dict() for view in self.views],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "MetricSchema":
        return cls(
            keys=tuple(str(k) for k in payload.get("keys", ())),
            metrics=tuple(
                MetricColumn.from_dict(m) for m in payload.get("metrics", ())
            ),
            views=tuple(FrameView.from_dict(v) for v in payload.get("views", ())),
        )


# ===================================================================== #
# The frame
# ===================================================================== #


@dataclass
class ResultFrame:
    """An aggregated, schema-typed result table.

    Each row maps every key column to its scalar value and every metric
    column to its aggregated cell (a scalar, or a
    :class:`~repro.common.stats.ConfidenceInterval` for ``mean_ci``
    columns).  Row order is the first-seen sample order, which the
    assembler inherits from job enumeration order -- so frames are
    deterministic and byte-stable across runner backends.
    """

    name: str
    title: str
    schema: MetricSchema
    rows: List[Dict[str, CellValue]] = field(default_factory=list)
    #: Fidelity tier the frame's cells were simulated at ("accurate" or
    #: "fast"); ``None`` for frames predating the tier axis.  ``repro diff``
    #: refuses to compare frames across tiers -- the fast tier is calibrated,
    #: not bit-identical, so a cross-tier diff would report drift that is
    #: really a tier mismatch.
    fidelity: Optional[str] = None

    # ------------------------------------------------------------------ #
    # Assembly (the one generic fold over runner output)
    # ------------------------------------------------------------------ #

    @classmethod
    def assemble(
        cls,
        schema: MetricSchema,
        samples: Iterable[Tuple[Tuple[object, ...], Mapping[str, object]]],
        *,
        name: str,
        title: str = "",
        fidelity: Optional[str] = None,
    ) -> "ResultFrame":
        """Fold ``(key tuple, values)`` samples into an aggregated frame.

        Samples are grouped by key tuple in first-seen order; each group is
        traversed **once**, batching every metric's sample list in a single
        pass, and then aggregated per the schema's rules.  A sample may
        carry only a subset of the metrics (the single-OS study merges two
        measurement kinds into one row); missing metrics simply contribute
        no sample.  ``derive`` columns are computed last, from the
        aggregated row.
        """
        groups: Dict[Tuple[object, ...], Dict[str, List[object]]] = {}
        metric_names = schema.metric_names()
        for key, values in samples:
            if len(key) != len(schema.keys):
                raise ExperimentError(
                    f"sample key {key!r} does not match schema keys {schema.keys!r}"
                )
            group = groups.get(key)
            if group is None:
                group = groups[key] = {}
            # One pass per sample: append to every present metric's batch.
            for metric in metric_names:
                if metric in values:
                    group.setdefault(metric, []).append(values[metric])

        frame = cls(name=name, title=title, schema=schema, fidelity=fidelity)
        for key, batches in groups.items():
            row: Dict[str, CellValue] = dict(zip(schema.keys, key))
            derived: List[MetricColumn] = []
            for column in schema.metrics:
                if column.aggregate == "derive":
                    derived.append(column)
                    continue
                row[column.name] = _aggregate(column, batches.get(column.name, []))
            for column in derived:
                if column.derive is None:
                    raise ExperimentError(
                        f"derive column {column.name!r} has no derive callable"
                    )
                row[column.name] = column.derive(row)
            frame.rows.append(row)
        return frame

    # ------------------------------------------------------------------ #
    # Lookup helpers
    # ------------------------------------------------------------------ #

    def key_of(self, row: Mapping[str, CellValue]) -> Tuple[object, ...]:
        """A row's key tuple, in schema key order."""
        return tuple(row[key] for key in self.schema.keys)

    def axis_values(self, key: str) -> Tuple[object, ...]:
        """Ordered distinct values of one key column."""
        if key not in self.schema.keys:
            raise ExperimentError(f"frame {self.name!r} has no key column {key!r}")
        return tuple(dict.fromkeys(row[key] for row in self.rows))

    def select(self, **keys: object) -> List[Dict[str, CellValue]]:
        """Rows whose key columns match every given value."""
        return [
            row
            for row in self.rows
            if all(row.get(name) == value for name, value in keys.items())
        ]

    def value(self, metric: str, **keys: object) -> CellValue:
        """The single cell of ``metric`` at the given key coordinates."""
        self.schema.metric(metric)  # unknown names raise ExperimentError
        matches = self.select(**keys)
        if len(matches) != 1:
            raise ExperimentError(
                f"frame {self.name!r}: {len(matches)} rows match {keys!r} "
                "(expected exactly one)"
            )
        return matches[0][metric]

    def mean_of(self, metric: str, **keys: object) -> float:
        """The numeric mean of one cell (CI cells collapse to their mean)."""
        return _numeric(self.value(metric, **keys))

    # ------------------------------------------------------------------ #
    # Generated rendering
    # ------------------------------------------------------------------ #

    def to_table(self) -> str:
        """Every generated table of this frame, joined for printing."""
        views = self.schema.views or (
            FrameView(title=self.title or self.name, metrics=self.schema.metric_names()),
        )
        return "\n\n".join(self._render_view(view) for view in views)

    def _render_view(self, view: FrameView) -> str:
        if view.pivot is None:
            return self._render_flat(view)
        return self._render_pivot(view)

    def _render_flat(self, view: FrameView) -> str:
        columns = [self.schema.metric(name) for name in view.metrics]
        table = TextTable(
            [*self.schema.keys, *[_header(column) for column in columns]],
            title=view.title,
        )
        for row in self.rows:
            cells: List[object] = [row[key] for key in self.schema.keys]
            cells += [_cell_text(column, row[column.name]) for column in columns]
            table.add_row(cells)
        return table.render()

    def _render_pivot(self, view: FrameView) -> str:
        pivot_values = self.axis_values(view.pivot)
        row_keys = [key for key in self.schema.keys if key != view.pivot]
        groups: Dict[Tuple[object, ...], Dict[object, Dict[str, CellValue]]] = {}
        for row in self.rows:
            group_key = tuple(row[key] for key in row_keys)
            groups.setdefault(group_key, {})[row[view.pivot]] = row

        headers = [str(_pivot_header(view, value)) for value in pivot_values]
        multi = len(view.metrics) > 1
        rows: List[List[object]] = []
        unnormalised = False
        for group_key, by_pivot in groups.items():
            for index, metric in enumerate(view.metrics):
                column = self.schema.metric(metric)
                # None is preserved (absent row / missing metric renders
                # "-"), never coerced to 0 -- a zero cell is data, a hole
                # is not.
                values: Dict[object, Optional[float]] = {}
                for pivot, row in by_pivot.items():
                    cell = row.get(metric)
                    values[pivot] = None if cell is None else _numeric(cell)
                raw_row = False
                if view.normalize_to is not None:
                    baseline = values.get(view.normalize_to)
                    if baseline:
                        values = {
                            p: (None if v is None else v / baseline)
                            for p, v in values.items()
                        }
                    else:
                        # No usable baseline in this group (restricted
                        # sweep, or a zero cell): showing raw numbers is
                        # better than hiding them, but the row must say
                        # they are NOT the normalised ratios the title
                        # promises.  The marker is per row -- other groups
                        # may normalise fine.
                        raw_row = unnormalised = True
                label = (
                    view.series_labels[index]
                    if index < len(view.series_labels)
                    else column.display
                )
                cells: List[object] = list(group_key)
                if raw_row and cells:
                    cells[0] = f"{cells[0]} *"
                if multi:
                    cells.append(label)
                for pivot in pivot_values:
                    value = values.get(pivot)
                    if value is None:
                        cells.append("-")
                    elif column.fmt and view.normalize_to is None:
                        cells.append(column.fmt.format(value))
                    else:
                        cells.append(value)
                rows.append(cells)
        title = view.title
        if unnormalised:
            title += (
                f" [* rows NOT normalised: baseline {view.normalize_to!r} unavailable]"
            )
        table = TextTable(
            [*row_keys, *([view.series_column] if multi else []), *headers],
            title=title,
        )
        for cells in rows:
            table.add_row(cells)
        return table.render()

    # ------------------------------------------------------------------ #
    # Canonical serialization and export
    # ------------------------------------------------------------------ #

    def to_json(self) -> Dict[str, object]:
        """The canonical JSON-safe document of this frame.

        Byte-stable: ``ResultFrame.from_json(frame.to_json()).to_json()``
        serializes identically (asserted by the round-trip tests).
        """
        payload: Dict[str, object] = {
            "frame_version": FRAME_SCHEMA_VERSION,
            "name": self.name,
            "title": self.title,
            "schema": self.schema.to_dict(),
            "rows": [
                {
                    column: _cell_to_json(value)
                    for column, value in row.items()
                }
                for row in self.rows
            ],
        }
        # Absent (not null) when unset, so documents written before the
        # fidelity axis serialize byte-identically.
        if self.fidelity is not None:
            payload["fidelity"] = self.fidelity
        return payload

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ResultFrame":
        """Rebuild a frame from :meth:`to_json` output.

        A structurally malformed payload raises :class:`ExperimentError`
        (never a bare ``KeyError``/``TypeError``), so callers like
        ``repro diff`` can distinguish bad input from real drift.
        """
        version = payload.get("frame_version")
        if version != FRAME_SCHEMA_VERSION:
            raise ExperimentError(
                f"unsupported frame version {version!r} "
                f"(this build reads version {FRAME_SCHEMA_VERSION})"
            )
        schema_payload = payload.get("schema")
        if not isinstance(schema_payload, Mapping):
            raise ExperimentError("frame payload has no 'schema' mapping")
        try:
            schema = MetricSchema.from_dict(schema_payload)
        except (KeyError, TypeError, ValueError) as error:
            raise ExperimentError(f"malformed frame schema: {error}") from None
        fidelity = payload.get("fidelity")
        frame = cls(
            name=str(payload.get("name", "")),
            title=str(payload.get("title", "")),
            schema=schema,
            fidelity=str(fidelity) if fidelity is not None else None,
        )
        rows_payload = payload.get("rows", ())
        if not isinstance(rows_payload, Sequence) or isinstance(rows_payload, (str, bytes)):
            raise ExperimentError("frame payload has no 'rows' list")
        for row_payload in rows_payload:
            if not isinstance(row_payload, Mapping):
                raise ExperimentError("frame row is not an object")
            row: Dict[str, CellValue] = {}
            for column, value in row_payload.items():
                row[column] = _cell_from_json(value)
            frame.rows.append(row)
        return frame

    def to_csv(self) -> str:
        """A CSV rendering generated from the schema (wide format).

        ``mean_ci`` columns expand to ``<name>_mean``, ``<name>_ci95`` and
        ``<name>_n``; every other column is one field.
        """
        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        header: List[str] = list(self.schema.keys)
        for column in self.schema.metrics:
            if column.aggregate == "mean_ci":
                header += [f"{column.name}_mean", f"{column.name}_ci95", f"{column.name}_n"]
            else:
                header.append(column.name)
        writer.writerow(header)
        for row in self.rows:
            cells: List[object] = [row[key] for key in self.schema.keys]
            for column in self.schema.metrics:
                value = row.get(column.name)
                if column.aggregate == "mean_ci":
                    ci = value if isinstance(value, ConfidenceInterval) else None
                    cells += (
                        [ci.mean, ci.half_width, ci.count]
                        if ci is not None
                        else ["", "", ""]
                    )
                else:
                    cells.append("" if value is None else value)
            writer.writerow(cells)
        return buffer.getvalue()


# ===================================================================== #
# Aggregation and cell plumbing
# ===================================================================== #


def _aggregate(column: MetricColumn, batch: Sequence[object]) -> CellValue:
    """Fold one metric's sample batch per its aggregation rule."""
    if column.aggregate == "mean_ci":
        return confidence_interval_95(float(v) for v in batch)
    if column.aggregate == "mean":
        return mean(float(v) for v in batch)
    if column.aggregate == "sum":
        total = sum(batch) if batch else 0
        return int(total) if column.dtype == "int" else total
    if column.aggregate == "last":
        return batch[-1] if batch else None
    raise ExperimentError(f"unknown aggregate {column.aggregate!r}")


def _numeric(value: CellValue) -> float:
    """Collapse a cell to its numeric value (CI cells to their mean)."""
    if isinstance(value, ConfidenceInterval):
        return value.mean
    if value is None:
        return 0.0
    return float(value)  # type: ignore[arg-type]


def _header(column: MetricColumn) -> str:
    return f"{column.display} ({column.unit})" if column.unit else column.display


def _cell_text(column: MetricColumn, value: CellValue) -> object:
    if value is None:
        return "-"
    if isinstance(value, ConfidenceInterval):
        return column.fmt.format(value.mean) if column.fmt else str(value)
    if column.fmt and isinstance(value, (int, float)) and not isinstance(value, bool):
        return column.fmt.format(value)
    return value


def _pivot_header(view: FrameView, value: object) -> str:
    if callable(view.pivot_header):
        return view.pivot_header(value)
    if isinstance(view.pivot_header, str):
        return view.pivot_header.format(value)
    return str(value)


def _cell_to_json(value: CellValue) -> object:
    if isinstance(value, ConfidenceInterval):
        return {
            "mean": value.mean,
            "half_width": value.half_width,
            "count": value.count,
        }
    return value


def _cell_from_json(value: object) -> CellValue:
    if isinstance(value, Mapping) and set(value) == {"mean", "half_width", "count"}:
        return ConfidenceInterval(
            mean=float(value["mean"]),
            half_width=float(value["half_width"]),
            count=int(value["count"]),
        )
    return value  # type: ignore[return-value]


# ===================================================================== #
# Baseline diffing
# ===================================================================== #


@dataclass(frozen=True)
class FrameDrift:
    """One difference between a baseline frame and a current frame."""

    frame: str
    kind: str  # missing-frame / extra-frame / schema-mismatch /
    #           fidelity-mismatch / missing-row / extra-row / value-drift
    detail: str

    def __str__(self) -> str:
        return f"[{self.frame}] {self.kind}: {self.detail}"


def _cells_close(
    baseline: CellValue, current: CellValue, rel_tol: float, abs_tol: float
) -> bool:
    if isinstance(baseline, ConfidenceInterval) or isinstance(
        current, ConfidenceInterval
    ):
        if not (
            isinstance(baseline, ConfidenceInterval)
            and isinstance(current, ConfidenceInterval)
        ):
            return False
        return (
            baseline.count == current.count
            and math.isclose(
                baseline.mean, current.mean, rel_tol=rel_tol, abs_tol=abs_tol
            )
            and math.isclose(
                baseline.half_width,
                current.half_width,
                rel_tol=rel_tol,
                abs_tol=abs_tol,
            )
        )
    if isinstance(baseline, bool) or isinstance(current, bool):
        return baseline == current
    if isinstance(baseline, (int, float)) and isinstance(current, (int, float)):
        return math.isclose(float(baseline), float(current), rel_tol=rel_tol, abs_tol=abs_tol)
    return baseline == current


def diff_frames(
    baseline: ResultFrame,
    current: ResultFrame,
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> List[FrameDrift]:
    """Compare two frames of the same experiment, within tolerances.

    Reports schema mismatches, rows present on only one side, and every
    metric cell whose values differ by more than the given tolerances.
    Returns an empty list when the frames agree.
    """
    drifts: List[FrameDrift] = []
    if (
        baseline.fidelity is not None
        and current.fidelity is not None
        and baseline.fidelity != current.fidelity
    ):
        # Cross-tier numbers differ by design (the fast tier is calibrated,
        # not exact); reporting them as value drift would be misleading.
        drifts.append(
            FrameDrift(
                frame=baseline.name,
                kind="fidelity-mismatch",
                detail=(
                    f"baseline simulated at fidelity={baseline.fidelity!r}, "
                    f"current at fidelity={current.fidelity!r}; re-run with "
                    f"--fidelity {baseline.fidelity} (or record a new baseline) "
                    "instead of comparing across tiers"
                ),
            )
        )
        return drifts
    if baseline.schema.keys != current.schema.keys or set(
        baseline.schema.metric_names()
    ) != set(current.schema.metric_names()):
        drifts.append(
            FrameDrift(
                frame=baseline.name,
                kind="schema-mismatch",
                detail=(
                    f"baseline {baseline.schema.keys}/{baseline.schema.metric_names()} "
                    f"vs current {current.schema.keys}/{current.schema.metric_names()}"
                ),
            )
        )
        return drifts

    current_rows = {current.key_of(row): row for row in current.rows}
    seen = set()
    for row in baseline.rows:
        key = baseline.key_of(row)
        label = "/".join(f"{k}={v}" for k, v in zip(baseline.schema.keys, key))
        other = current_rows.get(key)
        if other is None:
            drifts.append(
                FrameDrift(frame=baseline.name, kind="missing-row", detail=label)
            )
            continue
        seen.add(key)
        for metric in baseline.schema.metric_names():
            if not _cells_close(row.get(metric), other.get(metric), rel_tol, abs_tol):
                drifts.append(
                    FrameDrift(
                        frame=baseline.name,
                        kind="value-drift",
                        detail=(
                            f"{label} {metric}: baseline={row.get(metric)} "
                            f"current={other.get(metric)}"
                        ),
                    )
                )
    for key in current_rows:
        if key not in seen:
            label = "/".join(f"{k}={v}" for k, v in zip(current.schema.keys, key))
            drifts.append(
                FrameDrift(frame=baseline.name, kind="extra-row", detail=label)
            )
    return drifts


def diff_documents(
    baseline: Mapping[str, ResultFrame],
    current: Mapping[str, ResultFrame],
    *,
    rel_tol: float = 1e-9,
    abs_tol: float = 1e-12,
) -> List[FrameDrift]:
    """Compare two ``{experiment: frame}`` documents frame by frame."""
    drifts: List[FrameDrift] = []
    for name, frame in baseline.items():
        if name not in current:
            drifts.append(
                FrameDrift(frame=name, kind="missing-frame", detail="not in current run")
            )
            continue
        drifts += diff_frames(frame, current[name], rel_tol=rel_tol, abs_tol=abs_tol)
    for name in current:
        if name not in baseline:
            drifts.append(
                FrameDrift(frame=name, kind="extra-frame", detail="not in baseline")
            )
    return drifts


# ===================================================================== #
# Multi-frame documents and export
# ===================================================================== #

#: Document tag of the canonical multi-frame serialization.
DOCUMENT_FORMAT = "repro-results"


def frames_document(
    frames: Mapping[str, ResultFrame],
    settings: Optional[Mapping[str, object]] = None,
) -> Dict[str, object]:
    """The canonical JSON document of a whole run (``run-all --json``).

    ``settings`` (a plain JSON-safe mapping, typically
    ``dataclasses.asdict(ExperimentSettings)``) is embedded so that
    ``repro diff`` can re-run the exact same evaluation.
    """
    return {
        "format": DOCUMENT_FORMAT,
        "frame_version": FRAME_SCHEMA_VERSION,
        "settings": dict(settings) if settings is not None else None,
        "frames": {name: frame.to_json() for name, frame in frames.items()},
    }


def document_frames(payload: Mapping[str, object]) -> Dict[str, ResultFrame]:
    """Rebuild the ``{experiment: frame}`` mapping of a document."""
    if payload.get("format") != DOCUMENT_FORMAT:
        raise ExperimentError(
            f"not a {DOCUMENT_FORMAT} document (format={payload.get('format')!r})"
        )
    frames_payload = payload.get("frames")
    if not isinstance(frames_payload, Mapping):
        raise ExperimentError("document has no 'frames' mapping")
    return {
        str(name): ResultFrame.from_json(frame)
        for name, frame in frames_payload.items()
    }


def frames_to_csv(frames: Mapping[str, ResultFrame]) -> str:
    """Export several frames as one tidy (long-format) CSV stream.

    Uniform columns whatever the mix of schemas: the experiment name, the
    row's key coordinates (``axis=value`` pairs joined with ``;``), the
    metric, its unit and aggregation rule, and the value (mean, CI
    half-width and sample count for ``mean_ci`` cells).
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(
        ["experiment", "key", "metric", "unit", "aggregate", "value", "ci95", "n"]
    )
    for name, frame in frames.items():
        for row in frame.rows:
            key = ";".join(
                f"{axis}={row[axis]}" for axis in frame.schema.keys
            )
            for column in frame.schema.metrics:
                value = row.get(column.name)
                if isinstance(value, ConfidenceInterval):
                    cells = [value.mean, value.half_width, value.count]
                else:
                    cells = ["" if value is None else value, "", ""]
                writer.writerow(
                    [name, key, column.name, column.unit, column.aggregate, *cells]
                )
    return buffer.getvalue()
