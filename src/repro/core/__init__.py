"""The Mixed-Mode Multicore (MMM) -- the paper's primary contribution.

This package assembles the substrates (cores, caches, DMR, protection,
virtualisation) into a machine that can run reliable and performance
applications simultaneously:

* :mod:`repro.core.modes` -- reliability modes and helpers,
* :mod:`repro.core.transitions` -- the Enter-DMR / Leave-DMR state machine
  with full cycle accounting (Table 1),
* :mod:`repro.core.policies` -- VCPU-to-core mapping policies: the DMR and
  non-DMR baselines, MMM-IPC, and MMM-TP,
* :mod:`repro.core.machine` -- the machine builder wiring every subsystem
  together from a :class:`~repro.config.system.SystemConfig` and VM specs,
* :mod:`repro.core.mmm` -- the :class:`MixedModeMulticore` façade, the
  recommended public entry point.
"""

from repro.core.adaptive import AdaptiveMmmPolicy, AdaptiveReliabilityController
from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.mmm import MixedModeMulticore
from repro.core.modes import ReliabilityMode, requires_dmr
from repro.core.policies import (
    AlwaysDmrPolicy,
    MappingPolicy,
    MmmIpcPolicy,
    MmmTpPolicy,
    NoDmrPolicy,
    policy_by_name,
    register_policy,
)
from repro.core.transitions import ModeTransitionEngine, TransitionBreakdown, TransitionFlavor

__all__ = [
    "AdaptiveMmmPolicy",
    "AdaptiveReliabilityController",
    "MixedModeMachine",
    "VmSpec",
    "MixedModeMulticore",
    "ReliabilityMode",
    "requires_dmr",
    "AlwaysDmrPolicy",
    "MappingPolicy",
    "MmmIpcPolicy",
    "MmmTpPolicy",
    "NoDmrPolicy",
    "policy_by_name",
    "register_policy",
    "ModeTransitionEngine",
    "TransitionBreakdown",
    "TransitionFlavor",
]
