"""VCPU-to-core mapping policies.

A mapping policy decides, once per scheduling quantum, how the VCPUs that
want to run are placed onto physical cores:

* :class:`NoDmrPolicy` -- every VCPU gets one core to itself (the paper's
  ``No DMR`` / ``No DMR 2X`` baselines, depending only on how many VCPUs are
  exposed).
* :class:`AlwaysDmrPolicy` -- every VCPU gets a vocal/mute pair (a
  traditional DMR machine, the ``DMR Base`` / ``Reunion`` configuration).
* :class:`MmmIpcPolicy` -- like a traditional DMR machine, a VCPU is
  statically associated with a pair of cores, but when the VCPU does not
  currently require reliability the redundant core is simply idled and the
  VCPU runs alone (with the PAB protecting its stores).
* :class:`MmmTpPolicy` -- reliable VCPUs get pairs; performance VCPUs get
  single cores; because the cores are overcommitted, VCPUs that do not fit
  are paused for the quantum.  This is the policy that needs the hardware
  virtualisation layer.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Sequence, Type

from repro.cpu.timing import CoreAssignment, ExecutionMode
from repro.dmr.reunion import ReunionPair
from repro.errors import SchedulingError
from repro.virt.scheduler import CoreAllocator, MappingPlan, VcpuPlacement
from repro.virt.vcpu import VirtualCPU

#: Signature of the factory creating Reunion pairs for DMR placements.
PairFactory = Callable[[int, int], ReunionPair]


class MappingPolicy(ABC):
    """Strategy deciding how VCPUs map onto cores each quantum."""

    #: Short machine-readable name used by experiment configs and reports.
    name: str = "abstract"
    #: Whether this policy is a mixed-mode policy (affects the PAB and the
    #: mode-transition accounting performed by the simulator).
    mixed_mode: bool = False
    #: Whether ``plan_quantum`` is a pure function of the VCPUs' identities
    #: and current DMR requirements.  The simulator reuses the previous
    #: quantum's plan when those inputs are unchanged and no timeline event
    #: fired -- a policy carrying its own per-quantum state (e.g. the
    #: duty-cycled adaptive policy) must set this to ``False`` so it is
    #: consulted every quantum.
    stateless_plans: bool = True

    @abstractmethod
    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        """Produce the VCPU-to-core mapping for one quantum."""

    # Helper shared by the concrete policies.
    @staticmethod
    def _pair_placement(
        vcpu: VirtualCPU, allocator: CoreAllocator, pair_factory: PairFactory
    ) -> VcpuPlacement | None:
        cores = allocator.allocate_pair()
        if cores is None:
            return None
        vocal, mute = cores
        pair = pair_factory(vocal, mute)
        assignment = CoreAssignment(
            mode=ExecutionMode.DMR,
            primary_core=vocal,
            secondary_core=mute,
            reunion_pair=pair,
        )
        return VcpuPlacement(vcpu_id=vcpu.vcpu_id, assignment=assignment)

    @staticmethod
    def _single_placement(
        vcpu: VirtualCPU, allocator: CoreAllocator, mode: ExecutionMode
    ) -> VcpuPlacement | None:
        core = allocator.allocate_single()
        if core is None:
            return None
        assignment = CoreAssignment(mode=mode, primary_core=core)
        return VcpuPlacement(vcpu_id=vcpu.vcpu_id, assignment=assignment)


class NoDmrPolicy(MappingPolicy):
    """Every VCPU runs alone on one core; no redundancy anywhere."""

    name = "no-dmr"
    mixed_mode = False

    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        plan = MappingPlan()
        for vcpu in vcpus:
            placement = self._single_placement(vcpu, allocator, ExecutionMode.BASELINE)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)
        return plan


class AlwaysDmrPolicy(MappingPolicy):
    """Every VCPU runs redundantly on a vocal/mute pair (traditional DMR)."""

    name = "dmr-base"
    mixed_mode = False

    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        plan = MappingPlan()
        for vcpu in vcpus:
            placement = self._pair_placement(vcpu, allocator, pair_factory)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)
        return plan


class MmmIpcPolicy(MappingPolicy):
    """Mixed mode with statically paired cores; redundant cores idle.

    Each VCPU owns a pair of cores.  When the VCPU requires reliability the
    pair executes in DMR; when it does not, only the vocal core executes (in
    performance mode, with the PAB active) and the mute core idles, which
    removes Reunion's verification and synchronisation overheads and improves
    the VCPU's IPC.
    """

    name = "mmm-ipc"
    mixed_mode = True

    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        plan = MappingPlan()
        for vcpu in vcpus:
            cores = allocator.allocate_pair()
            if cores is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
                continue
            vocal, mute = cores
            if vcpu.requires_dmr():
                pair = pair_factory(vocal, mute)
                assignment = CoreAssignment(
                    mode=ExecutionMode.DMR,
                    primary_core=vocal,
                    secondary_core=mute,
                    reunion_pair=pair,
                )
                plan.placements.append(
                    VcpuPlacement(vcpu_id=vcpu.vcpu_id, assignment=assignment)
                )
            else:
                # The redundant core is deliberately left idle, but stays
                # reserved so the pair can re-form at the next OS entry.
                assignment = CoreAssignment(
                    mode=ExecutionMode.PERFORMANCE, primary_core=vocal
                )
                plan.placements.append(
                    VcpuPlacement(
                        vcpu_id=vcpu.vcpu_id,
                        assignment=assignment,
                        reserved_partner_core=mute,
                    )
                )
        return plan


class MmmTpPolicy(MappingPolicy):
    """Mixed mode with dynamic pairing and core overcommit (MMM-TP).

    Reliable VCPUs are placed first (each consumes a pair); the remaining
    cores then each run one performance VCPU.  VCPUs that do not fit are
    paused for the quantum -- exactly the overcommitted situation of Figure 4
    in the paper.
    """

    name = "mmm-tp"
    mixed_mode = True

    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        plan = MappingPlan()
        reliable = [vcpu for vcpu in vcpus if vcpu.requires_dmr()]
        performance = [vcpu for vcpu in vcpus if not vcpu.requires_dmr()]

        for vcpu in reliable:
            placement = self._pair_placement(vcpu, allocator, pair_factory)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)

        for vcpu in performance:
            placement = self._single_placement(vcpu, allocator, ExecutionMode.PERFORMANCE)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)
        return plan


#: Registry of the built-in policies by their short names.
_POLICIES: Dict[str, Type[MappingPolicy]] = {
    NoDmrPolicy.name: NoDmrPolicy,
    AlwaysDmrPolicy.name: AlwaysDmrPolicy,
    MmmIpcPolicy.name: MmmIpcPolicy,
    MmmTpPolicy.name: MmmTpPolicy,
}


def register_policy(policy_class: Type[MappingPolicy]) -> Type[MappingPolicy]:
    """Register an additional mapping policy under its ``name``.

    Used by extensions (e.g. the adaptive duty-cycled policy) and available to
    downstream users experimenting with their own scheduling strategies.
    """
    if not policy_class.name or policy_class.name == "abstract":
        raise SchedulingError("a mapping policy needs a concrete name to be registered")
    _POLICIES[policy_class.name] = policy_class
    return policy_class


def policy_by_name(name: str) -> MappingPolicy:
    """Instantiate one of the built-in mapping policies by name."""
    try:
        return _POLICIES[name.lower()]()
    except KeyError as exc:
        known = ", ".join(sorted(_POLICIES))
        raise SchedulingError(f"unknown policy {name!r}; known policies: {known}") from exc


def available_policies() -> List[str]:
    """Names of the built-in mapping policies."""
    return sorted(_POLICIES)
