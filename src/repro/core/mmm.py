"""High-level façade: build and run a Mixed-Mode Multicore in a few lines.

:class:`MixedModeMulticore` is the recommended public entry point of the
library.  It wraps the machine builder and the simulator behind a small API::

    from repro import MixedModeMulticore, ReliabilityMode

    system = MixedModeMulticore.consolidated_server(
        reliable_workload="oltp",
        performance_workload="apache",
        policy="mmm-tp",
    )
    result = system.run(total_cycles=40_000, warmup_cycles=10_000)
    print(result.vm("performance").throughput(result.total_cycles))

Class methods cover the three system shapes the paper discusses: a
consolidated server with one reliable and one performance guest VM (Figure
2), a single-OS desktop mixing a reliable and a performance application
(Figure 1), and the single-workload baselines used for the DMR overhead
study (Figure 5).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.config.presets import paper_system_config, small_system_config
from repro.config.system import SystemConfig
from repro.core.machine import MixedModeMachine, VmSpec
from repro.core.policies import MappingPolicy
from repro.cpu.parameters import TimingModelParameters
from repro.errors import ConfigurationError
from repro.faults.injector import FaultRates
from repro.sim.results import SimulationResult
from repro.sim.simulator import SimulationOptions, Simulator
from repro.virt.vcpu import ReliabilityMode

#: Timeslice the paper uses (1 ms at 3 GHz); scaled-down runs preserve the
#: ratio of transition cost to timeslice through ``transition_cost_scale``.
PAPER_TIMESLICE_CYCLES = 3_000_000


class MixedModeMulticore:
    """A mixed-mode multicore system: configuration, machine, and runner."""

    def __init__(
        self,
        vm_specs: Sequence[VmSpec],
        policy: Union[str, MappingPolicy] = "mmm-tp",
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        timing_parameters: Optional[TimingModelParameters] = None,
        fault_rates: Optional[FaultRates] = None,
    ) -> None:
        self.config = (config or paper_system_config()).validate()
        self.machine = MixedModeMachine(
            config=self.config,
            vm_specs=vm_specs,
            policy=policy,
            seed=seed,
            timing_parameters=timing_parameters,
            fault_rates=fault_rates,
        )

    # ------------------------------------------------------------------ #
    # Common system shapes
    # ------------------------------------------------------------------ #

    @classmethod
    def consolidated_server(
        cls,
        reliable_workload: str = "oltp",
        performance_workload: str = "apache",
        policy: Union[str, MappingPolicy] = "mmm-tp",
        reliable_vcpus: int = 8,
        performance_vcpus: Optional[int] = None,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        phase_scale: float = 0.02,
        footprint_scale: float = 1.0,
        fault_rates: Optional[FaultRates] = None,
    ) -> "MixedModeMulticore":
        """A consolidated server with one reliable and one performance guest VM.

        This mirrors the paper's evaluation setup: the reliable VM exposes 8
        VCPUs (always DMR); the performance VM exposes 8 VCPUs under DMR-base
        and MMM-IPC, or 16 VCPUs under MMM-TP (to use all cores
        independently).  ``performance_vcpus`` overrides the default.
        """
        resolved_config = (config or paper_system_config()).validate()
        policy_name = policy if isinstance(policy, str) else policy.name
        if performance_vcpus is None:
            performance_vcpus = (
                resolved_config.num_cores
                if policy_name == "mmm-tp"
                else resolved_config.num_cores // 2
            )
        specs = [
            VmSpec(
                name="reliable",
                workload=reliable_workload,
                num_vcpus=reliable_vcpus,
                reliability=ReliabilityMode.RELIABLE,
                phase_scale=phase_scale,
                footprint_scale=footprint_scale,
            ),
            VmSpec(
                name="performance",
                workload=performance_workload,
                num_vcpus=performance_vcpus,
                reliability=ReliabilityMode.PERFORMANCE,
                phase_scale=phase_scale,
                footprint_scale=footprint_scale,
            ),
        ]
        return cls(
            vm_specs=specs, policy=policy, config=resolved_config, seed=seed,
            fault_rates=fault_rates,
        )

    @classmethod
    def single_os_desktop(
        cls,
        reliable_workload: str = "oltp",
        performance_workload: str = "apache",
        vcpus_per_application: int = 2,
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        phase_scale: float = 0.02,
        footprint_scale: float = 1.0,
        fault_rates: Optional[FaultRates] = None,
    ) -> "MixedModeMulticore":
        """A single-OS system mixing a reliable and a performance application.

        The performance application uses ``PERFORMANCE_USER_ONLY`` mode: its
        user code runs without DMR, but every system call, page fault or
        interrupt escalates back to reliable mode (the OS is the most
        privileged software and must always be protected).  The MMM-IPC
        policy is used because it statically reserves a partner core for each
        VCPU, which is what makes the frequent transitions cheap.
        """
        specs = [
            VmSpec(
                name="reliable-app",
                workload=reliable_workload,
                num_vcpus=vcpus_per_application,
                reliability=ReliabilityMode.RELIABLE,
                phase_scale=phase_scale,
                footprint_scale=footprint_scale,
            ),
            VmSpec(
                name="performance-app",
                workload=performance_workload,
                num_vcpus=vcpus_per_application,
                reliability=ReliabilityMode.PERFORMANCE_USER_ONLY,
                phase_scale=phase_scale,
                footprint_scale=footprint_scale,
            ),
        ]
        return cls(
            vm_specs=specs, policy="mmm-ipc", config=config, seed=seed,
            fault_rates=fault_rates,
        )

    @classmethod
    def baseline(
        cls,
        workload: str,
        num_vcpus: int,
        policy: Union[str, MappingPolicy],
        config: Optional[SystemConfig] = None,
        seed: int = 0,
        phase_scale: float = 0.02,
        footprint_scale: float = 1.0,
    ) -> "MixedModeMulticore":
        """A single-workload machine for the DMR overhead baselines (Figure 5)."""
        if num_vcpus < 1:
            raise ConfigurationError("a baseline machine needs at least one VCPU")
        specs = [
            VmSpec(
                name="baseline",
                workload=workload,
                num_vcpus=num_vcpus,
                reliability=ReliabilityMode.RELIABLE,
                phase_scale=phase_scale,
                footprint_scale=footprint_scale,
            )
        ]
        return cls(vm_specs=specs, policy=policy, config=config, seed=seed)

    # ------------------------------------------------------------------ #
    # Running
    # ------------------------------------------------------------------ #

    def simulator(self, options: Optional[SimulationOptions] = None) -> Simulator:
        """Create a simulator bound to this system's machine."""
        return self.machine.simulator(options)

    def run(
        self,
        total_cycles: int = 40_000,
        warmup_cycles: int = 10_000,
        quantum_cycles: Optional[int] = None,
        transition_cost_scale: Optional[float] = None,
        fine_grained_switching: bool = True,
    ) -> SimulationResult:
        """Simulate the system and return its results.

        ``transition_cost_scale`` defaults to the ratio of the configured
        timeslice to the paper's 1 ms timeslice, preserving the paper's
        amortisation of consolidated-server mode switches.
        """
        if transition_cost_scale is None:
            timeslice = self.config.virtualization.timeslice_cycles
            transition_cost_scale = min(1.0, timeslice / PAPER_TIMESLICE_CYCLES)
        options = SimulationOptions(
            total_cycles=total_cycles,
            warmup_cycles=warmup_cycles,
            quantum_cycles=quantum_cycles,
            transition_cost_scale=transition_cost_scale,
            fine_grained_switching=fine_grained_switching,
        )
        return self.simulator(options).run()

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #

    @property
    def policy_name(self) -> str:
        """Name of the mapping policy in use."""
        return self.machine.policy.name

    @staticmethod
    def small_test_config() -> SystemConfig:
        """The scaled-down 4-core configuration used by the test suite."""
        return small_system_config()
