"""Machine builder: wires every subsystem into a runnable mixed-mode machine.

:class:`MixedModeMachine` takes a :class:`~repro.config.system.SystemConfig`,
a list of guest-VM specifications and a mapping policy, and constructs the
complete simulated machine: physical address-space layout, page table, PAT,
per-core TLBs and PABs, the cache hierarchy, the Reunion fingerprint network,
the VCPU scratchpad and state-transfer engine, the mode-transition engine,
the synthetic workloads, the VCPUs and guest VMs, and (optionally) a fault
injector.  The :meth:`simulator` method returns a ready-to-run
:class:`repro.sim.simulator.Simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.common.addresses import AddressSpaceLayout, align_up
from repro.common.rng import DeterministicRng
from repro.config.system import SystemConfig
from repro.core.policies import MappingPolicy, policy_by_name
from repro.core.transitions import ModeTransitionEngine
from repro.cpu.core import PhysicalCore
from repro.cpu.parameters import TimingModelParameters
from repro.cpu.timing import CoreTimingModel
from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.dmr.reunion import ReunionPair
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector, FaultRates
from repro.isa.instructions import PrivilegeLevel
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.pab import ProtectionAssistanceBuffer
from repro.protection.pat import ProtectionAssistanceTable
from repro.protection.violations import ViolationLog
from repro.tlb.page_table import PageFlags, PageTable
from repro.tlb.tlb import TranslationLookasideBuffer
from repro.virt.migration import VcpuStateTransferEngine
from repro.virt.scheduler import CoreAllocator
from repro.virt.scratchpad import ScratchpadManager
from repro.virt.vcpu import ReliabilityMode, VirtualCPU
from repro.virt.vm import GuestVM
from repro.workloads.generator import SyntheticWorkload
from repro.workloads.profiles import WorkloadProfile, get_profile


@dataclass(frozen=True)
class VmSpec:
    """Specification of one guest VM to build."""

    name: str
    workload: Union[str, WorkloadProfile]
    num_vcpus: int
    reliability: ReliabilityMode
    #: Scale factor applied to the workload's user/OS phase lengths so that
    #: scaled-down simulations still alternate between user and OS code.
    phase_scale: float = 1.0
    #: Scale factor applied to the workload's working-set sizes (used by the
    #: small test configuration).
    footprint_scale: float = 1.0
    #: ``False`` builds the VM *deferred*: its address-space regions, page
    #: tables, workloads and VCPUs are constructed up front (so the machine
    #: shape is fully deterministic), but the VM does not participate in the
    #: gang schedule until a ``VmArrived`` timeline event admits it.
    present_at_start: bool = True

    def profile(self) -> WorkloadProfile:
        """Resolve the workload profile (by name or pass-through)."""
        if isinstance(self.workload, WorkloadProfile):
            profile = self.workload
        else:
            profile = get_profile(self.workload)
        if self.footprint_scale != 1.0:
            profile = profile.scaled(footprint_scale=self.footprint_scale)
        return profile


class MixedModeMachine:
    """A fully wired mixed-mode multicore ready for simulation."""

    def __init__(
        self,
        config: SystemConfig,
        vm_specs: Sequence[VmSpec],
        policy: Union[str, MappingPolicy],
        seed: int = 0,
        timing_parameters: Optional[TimingModelParameters] = None,
        fault_rates: Optional[FaultRates] = None,
    ) -> None:
        if not vm_specs:
            raise ConfigurationError("a machine needs at least one guest VM")
        self.config = config.validate()
        self.vm_specs = list(vm_specs)
        self.policy = policy_by_name(policy) if isinstance(policy, str) else policy
        self.seed = seed
        self.rng = DeterministicRng(seed)

        self.layout = self._build_layout()
        self.page_table = PageTable(page_size=self.config.pab.page_bytes)
        self.pat = ProtectionAssistanceTable(
            physical_memory_bytes=self.layout.total_bytes,
            page_size=self.config.pab.page_bytes,
            backing_region=self.layout.pat_region(),
        )
        self._populate_page_table_and_pat()

        self.hierarchy = MemoryHierarchy(self.config)
        self.violation_log = ViolationLog()
        self.pabs: List[ProtectionAssistanceBuffer] = [
            ProtectionAssistanceBuffer(
                config=self.config.pab,
                pat=self.pat,
                core_id=core_id,
                hierarchy=self.hierarchy,
            )
            for core_id in range(self.config.num_cores)
        ]
        self.tlbs: List[TranslationLookasideBuffer] = []
        for core_id in range(self.config.num_cores):
            tlb = TranslationLookasideBuffer(
                config=self.config.tlb,
                page_table=self.page_table,
                demap_listener=self.pabs[core_id].on_tlb_demap,
            )
            self.tlbs.append(tlb)

        self.fault_injector = self._build_fault_injector(fault_rates)
        self.timing_model = CoreTimingModel(
            config=self.config,
            hierarchy=self.hierarchy,
            tlbs=self.tlbs,
            pabs=self.pabs,
            parameters=timing_parameters,
            violation_log=self.violation_log,
            fault_hook=self.fault_injector,
        )

        self.cores: List[PhysicalCore] = [
            PhysicalCore(core_id=core_id) for core_id in range(self.config.num_cores)
        ]
        self.allocator = CoreAllocator(self.cores)
        self.fingerprint_network = FingerprintNetwork(self.config.interconnect)

        self.vms: List[GuestVM] = []
        self.vcpus: Dict[int, VirtualCPU] = {}
        self._build_vms()

        self.scratchpad = ScratchpadManager(
            layout=self.layout,
            vcpu_state_bytes=self.config.virtualization.vcpu_state_bytes,
        )
        self.transfer_engine = VcpuStateTransferEngine(
            hierarchy=self.hierarchy,
            scratchpad=self.scratchpad,
            config=self.config.virtualization,
            overlap_factor=2.0,
        )
        self.transition_engine = ModeTransitionEngine(
            config=self.config,
            hierarchy=self.hierarchy,
            transfer_engine=self.transfer_engine,
            violation_log=self.violation_log,
        )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #

    def _build_layout(self) -> AddressSpaceLayout:
        page = self.config.pab.page_bytes
        max_user_need = 0
        total_vcpus = 0
        for spec in self.vm_specs:
            profile = spec.profile()
            max_user_need = max(
                max_user_need, profile.user_footprint_bytes * max(1, spec.num_vcpus)
            )
            total_vcpus += spec.num_vcpus
        # The user portion is half of each VM's region; leave 25% headroom.
        vm_memory = align_up(max(4 * page, int(max_user_need * 2 * 1.25)), page)
        slot_bytes = align_up(self.config.virtualization.vcpu_state_bytes, 64)
        scratchpad = align_up(max(64 * 1024, 2 * total_vcpus * slot_bytes * 2), page)
        return AddressSpaceLayout(
            vm_memory_bytes=vm_memory,
            num_vms=len(self.vm_specs),
            scratchpad_bytes=scratchpad,
            pat_bytes=align_up(max(page, vm_memory // 1024), page),
            page_size=page,
            shared_fraction=0.25,
            kernel_fraction=0.25,
        )

    def _populate_page_table_and_pat(self) -> None:
        for vm_id, spec in enumerate(self.vm_specs):
            reliable = spec.reliability is ReliabilityMode.RELIABLE
            reliable_flag = PageFlags.RELIABLE_ONLY if reliable else PageFlags.NONE
            self.page_table.map_region(
                self.layout.user_region(vm_id),
                PageFlags.USER_READ | PageFlags.USER_WRITE | reliable_flag,
                domain=vm_id,
            )
            self.page_table.map_region(
                self.layout.shared_region(vm_id),
                PageFlags.USER_READ | PageFlags.USER_WRITE | reliable_flag,
                domain=vm_id,
            )
            self.page_table.map_region(
                self.layout.kernel_region(vm_id),
                PageFlags.USER_READ | PageFlags.PRIVILEGED_ONLY | reliable_flag,
                domain=vm_id,
            )
            if reliable:
                self.pat.mark_reliable_region(self.layout.vm_region(vm_id))
        # System-software structures are always reliable-only.
        for region in (self.layout.scratchpad_region(), self.layout.pat_region()):
            self.page_table.map_region(
                region,
                PageFlags.PRIVILEGED_ONLY | PageFlags.RELIABLE_ONLY,
                domain=-1,
            )
            self.pat.mark_reliable_region(region)

    def _build_fault_injector(
        self, fault_rates: Optional[FaultRates]
    ) -> Optional[FaultInjector]:
        if fault_rates is None or not fault_rates.any_active():
            return None
        target = None
        for vm_id, spec in enumerate(self.vm_specs):
            if spec.reliability is ReliabilityMode.RELIABLE:
                region = self.layout.user_region(vm_id)
                target = region.base + 64
                break
        return FaultInjector(
            rates=fault_rates,
            rng=self.rng.fork("faults"),
            reliable_target_address=target,
        )

    def _build_vms(self) -> None:
        single_os = len(self.vm_specs) == 1
        os_privilege = (
            PrivilegeLevel.HYPERVISOR if single_os else PrivilegeLevel.GUEST_OS
        )
        if not any(spec.present_at_start for spec in self.vm_specs):
            raise ConfigurationError(
                "a machine needs at least one VM present at start"
            )
        next_vcpu_id = 0
        for vm_id, spec in enumerate(self.vm_specs):
            vm = GuestVM(
                vm_id=vm_id,
                name=spec.name,
                reliability=spec.reliability,
                workload_name=(
                    spec.workload
                    if isinstance(spec.workload, str)
                    else spec.workload.name
                ),
                active=spec.present_at_start,
            )
            profile = spec.profile()
            for index in range(spec.num_vcpus):
                workload = SyntheticWorkload(
                    profile=profile,
                    layout=self.layout,
                    vm_id=vm_id,
                    vcpu_index=index,
                    num_vcpus=spec.num_vcpus,
                    seed=self.seed + 1000 * vm_id + index,
                    phase_scale=spec.phase_scale,
                    os_privilege=os_privilege,
                )
                vcpu = VirtualCPU(
                    vcpu_id=next_vcpu_id,
                    vm_id=vm_id,
                    workload=workload,
                    mode_register=spec.reliability,
                )
                next_vcpu_id += 1
                vm.add_vcpu(vcpu)
                self.vcpus[vcpu.vcpu_id] = vcpu
            self.vms.append(vm)

    # ------------------------------------------------------------------ #
    # Public helpers
    # ------------------------------------------------------------------ #

    def pair_factory(self, vocal_core: int, mute_core: int) -> ReunionPair:
        """Create a Reunion pair on the given cores (used by the policies)."""
        return ReunionPair(
            vocal_core_id=vocal_core,
            mute_core_id=mute_core,
            config=self.config.reunion,
            network=self.fingerprint_network,
        )

    @property
    def num_cores(self) -> int:
        """Number of physical cores on the chip."""
        return self.config.num_cores

    # ------------------------------------------------------------------ #
    # Dynamic lifecycle (driven by timeline events mid-run)
    # ------------------------------------------------------------------ #

    @property
    def retired_cores(self) -> frozenset:
        """Cores currently retired by permanent faults."""
        return self.allocator.retired_cores

    @property
    def num_healthy_cores(self) -> int:
        """Cores available for scheduling right now."""
        return self.allocator.num_healthy_cores

    def retire_core(self, core_id: int) -> None:
        """Take one core out of service (a permanent fault).

        The core leaves the allocator's pool; the next quantum's mapping
        plan re-pairs any DMR partner around the failure.  Retiring every
        core is rejected -- a chip with no healthy cores cannot make
        progress and the scenario is almost certainly a mistake.
        """
        if self.num_healthy_cores <= 1:
            raise ConfigurationError(
                f"cannot retire core {core_id}: it is the last healthy core"
            )
        self.allocator.retire(core_id)

    def restore_core(self, core_id: int) -> None:
        """Return a retired core to service (a repair)."""
        self.allocator.restore(core_id)

    @property
    def active_vms(self) -> List[GuestVM]:
        """The guest VMs currently participating in the gang schedule."""
        return [vm for vm in self.vms if vm.active]

    def admit_vm(self, name: str) -> GuestVM:
        """Admit a deferred (or previously drained) VM to the schedule."""
        vm = self.vm_by_name(name)
        if vm.active:
            raise ConfigurationError(f"VM {name!r} is already active")
        vm.active = True
        return vm

    def drain_vm(self, name: str) -> GuestVM:
        """Drain an active VM from the schedule (its counters are kept)."""
        vm = self.vm_by_name(name)
        if not vm.active:
            raise ConfigurationError(f"VM {name!r} is not active")
        if len(self.active_vms) == 1:
            raise ConfigurationError(
                f"cannot drain VM {name!r}: it is the last active VM"
            )
        vm.active = False
        return vm

    def set_policy(self, policy: Union[str, MappingPolicy]) -> MappingPolicy:
        """Hot-swap the VCPU-to-core mapping policy (privileged software)."""
        self.policy = policy_by_name(policy) if isinstance(policy, str) else policy
        return self.policy

    def set_vm_reliability(self, name: str, mode: ReliabilityMode) -> GuestVM:
        """Rewrite one VM's reliability requirement and all of its VCPUs'
        mode registers (the paper's privileged per-VCPU register write)."""
        vm = self.vm_by_name(name)
        vm.reliability = mode
        for vcpu in vm.vcpus:
            vcpu.write_mode_register(mode, PrivilegeLevel.HYPERVISOR)
        return vm

    @property
    def total_vcpus(self) -> int:
        """Number of VCPUs exposed to system software."""
        return len(self.vcpus)

    def vm_by_name(self, name: str) -> GuestVM:
        """Look up a guest VM by its spec name."""
        for vm in self.vms:
            if vm.name == name:
                return vm
        raise ConfigurationError(f"no VM named {name!r}")

    def vcpu(self, vcpu_id: int) -> VirtualCPU:
        """Look up a VCPU by id."""
        try:
            return self.vcpus[vcpu_id]
        except KeyError as exc:
            raise ConfigurationError(f"no VCPU with id {vcpu_id}") from exc

    def simulator(self, options=None, timeline=None):
        """Create a :class:`repro.sim.simulator.Simulator` for this machine."""
        from repro.sim.simulator import SimulationOptions, Simulator

        if options is None:
            options = SimulationOptions()
        return Simulator(machine=self, options=options, timeline=timeline)
