"""Mode-transition state machine (Enter DMR / Leave DMR).

Each core contains a small hardware state machine that performs the steps of
a mode transition (Section 3.4.3).  The engine below reproduces those steps,
charging real hierarchy latencies through the VCPU state-transfer engine, so
that Table 1's asymmetry emerges from the machine configuration:

**Enter DMR** (performance -> reliable):
  synchronise the pair, save the state of the performance VCPU(s) that were
  using the cores, load the reliable VCPU's state onto both cores (or, when
  the same VCPU is merely escalating for a system call, have the mute load
  its redundant privileged copy plus the vocal's registers), and verify the
  vocal's privileged registers against the independently saved copy.

**Leave DMR** (reliable -> performance):
  synchronise, store the reliable VCPU's state (both cores under MMM-TP,
  privileged state only under MMM-IPC), flush the mute core's L2 line by line
  (MMM-TP only -- its cache mixes coherent and incoherent lines), and load
  the state of the performance VCPU(s) about to use the cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto
from typing import Dict, Optional

from repro.common.stats import StatSet
from repro.config.system import SystemConfig
from repro.errors import TransitionError
from repro.isa.registers import ArchitecturalState
from repro.mem.hierarchy import MemoryHierarchy
from repro.protection.violations import (
    ProtectionViolation,
    ViolationKind,
    ViolationLog,
)
from repro.virt.migration import VcpuStateTransferEngine
from repro.virt.scratchpad import ScratchpadManager
from repro.virt.vcpu import VirtualCPU


class TransitionFlavor(Enum):
    """Which MMM variant is performing the transition."""

    MMM_IPC = auto()
    MMM_TP = auto()


@dataclass
class TransitionBreakdown:
    """Cycle cost of one mode transition, broken down by step."""

    kind: str
    flavor: TransitionFlavor
    sync_cycles: int = 0
    save_cycles: int = 0
    load_cycles: int = 0
    verify_cycles: int = 0
    flush_cycles: int = 0
    pipeline_cycles: int = 0
    verify_failed: bool = False
    details: StatSet = field(default_factory=StatSet)

    @property
    def total_cycles(self) -> int:
        """Total cycles the transition keeps the cores from doing useful work."""
        return (
            self.sync_cycles
            + self.save_cycles
            + self.load_cycles
            + self.verify_cycles
            + self.flush_cycles
            + self.pipeline_cycles
        )


class ModeTransitionEngine:
    """Performs Enter-DMR and Leave-DMR transitions and accounts their cost."""

    #: Cycles to drain and restart both pipelines around a transition.
    PIPELINE_RESTART_CYCLES = 64
    #: Cycles to compare the privileged registers during verification.
    VERIFY_COMPARE_CYCLES = 24

    def __init__(
        self,
        config: SystemConfig,
        hierarchy: MemoryHierarchy,
        transfer_engine: VcpuStateTransferEngine,
        violation_log: Optional[ViolationLog] = None,
    ) -> None:
        self.config = config
        self.hierarchy = hierarchy
        self.transfer_engine = transfer_engine
        # Note: an empty ViolationLog is falsy, so "or" must not be used here.
        self.violation_log = violation_log if violation_log is not None else ViolationLog()
        self.stats = StatSet()
        #: Redundant privileged-register copies saved at Leave-DMR time, used
        #: by the next Enter-DMR verification for the same VCPU.
        self._redundant_privileged: Dict[int, ArchitecturalState] = {}

    # ------------------------------------------------------------------ #
    # Shared pieces
    # ------------------------------------------------------------------ #

    def _sync_cycles(self) -> int:
        return (
            self.config.virtualization.sync_cycles
            + self.config.interconnect.fingerprint_latency
        )

    def _verify(self, vcpu: VirtualCPU, core_id: int, cycle: int) -> tuple[int, bool]:
        """Verify the vocal's privileged registers against the redundant copy."""
        redundant = self._redundant_privileged.get(vcpu.vcpu_id)
        cycles = self.VERIFY_COMPARE_CYCLES
        if redundant is None:
            # First transition for this VCPU: nothing saved yet, so the mute
            # simply adopts the vocal's state (no comparison possible).
            return cycles, False
        ok, mismatches = vcpu.arch_state.verify_privileged_against(redundant)
        if ok:
            return cycles, False
        self.stats.add("verify_failures")
        self.violation_log.record(
            ProtectionViolation(
                kind=ViolationKind.TRANSITION_VERIFY_FAILED,
                cycle=cycle,
                core_id=core_id,
                vcpu_id=vcpu.vcpu_id,
                physical_address=None,
                description=(
                    "privileged registers diverged during performance mode: "
                    + ", ".join(mismatches)
                ),
            )
        )
        # Recovery: reload the corrupted registers from the redundant copy.
        for name in mismatches:
            vcpu.arch_state.privileged[name] = redundant.privileged[name]
        cycles += self.transfer_engine.load_privileged_state(
            core_id, vcpu.vcpu_id, copy=ScratchpadManager.REDUNDANT
        ).cycles
        return cycles, True

    def _snapshot_redundant(self, vcpu: VirtualCPU) -> None:
        self._redundant_privileged[vcpu.vcpu_id] = vcpu.arch_state.copy()

    # ------------------------------------------------------------------ #
    # Enter DMR
    # ------------------------------------------------------------------ #

    def enter_dmr(
        self,
        vocal_core: int,
        mute_core: int,
        vcpu: VirtualCPU,
        outgoing_vocal_vcpu: Optional[VirtualCPU] = None,
        outgoing_mute_vcpu: Optional[VirtualCPU] = None,
        flavor: TransitionFlavor = TransitionFlavor.MMM_TP,
        current_cycle: int = 0,
    ) -> TransitionBreakdown:
        """Bring ``vcpu`` under DMR on (``vocal_core``, ``mute_core``).

        ``outgoing_*_vcpu`` are the performance VCPUs (if any) that were
        independently using the two cores and whose state must be saved first
        -- the MMM-TP case where the hardware scheduler had put another VCPU
        on the mute core.
        """
        if vocal_core == mute_core:
            raise TransitionError("a DMR pair needs two distinct cores")
        breakdown = TransitionBreakdown(kind="enter_dmr", flavor=flavor)
        breakdown.sync_cycles = self._sync_cycles()
        breakdown.pipeline_cycles = self.PIPELINE_RESTART_CYCLES

        # Save the state of whoever was using the cores in performance mode.
        if outgoing_vocal_vcpu is not None:
            result = self.transfer_engine.save_state(vocal_core, outgoing_vocal_vcpu.vcpu_id)
            breakdown.save_cycles += result.cycles
            breakdown.details.add("outgoing_vocal_lines", result.lines)
        if outgoing_mute_vcpu is not None:
            result = self.transfer_engine.save_state(mute_core, outgoing_mute_vcpu.vcpu_id)
            breakdown.save_cycles += result.cycles
            breakdown.details.add("outgoing_mute_lines", result.lines)

        if outgoing_vocal_vcpu is None or outgoing_vocal_vcpu.vcpu_id == vcpu.vcpu_id:
            # Same-VCPU escalation (system call from performance mode): the
            # vocal already holds the live state; it stores it so the mute can
            # load and verify it.
            save = self.transfer_engine.save_state(vocal_core, vcpu.vcpu_id)
            breakdown.save_cycles += save.cycles
            load_priv = self.transfer_engine.load_privileged_state(
                mute_core, vcpu.vcpu_id, copy=ScratchpadManager.REDUNDANT
            )
            load_full = self.transfer_engine.load_state(mute_core, vcpu.vcpu_id)
            breakdown.load_cycles += load_priv.cycles + load_full.cycles
        else:
            # Context switch: both cores load the newly scheduled reliable
            # VCPU's state from the scratchpad.
            for core in (vocal_core, mute_core):
                result = self.transfer_engine.load_state(core, vcpu.vcpu_id)
                breakdown.load_cycles += result.cycles

        verify_cycles, failed = self._verify(vcpu, mute_core, current_cycle)
        breakdown.verify_cycles = verify_cycles
        breakdown.verify_failed = failed

        self.stats.add("enter_dmr_transitions")
        self.stats.add("enter_dmr_cycles", breakdown.total_cycles)
        return breakdown

    # ------------------------------------------------------------------ #
    # Leave DMR
    # ------------------------------------------------------------------ #

    def leave_dmr(
        self,
        vocal_core: int,
        mute_core: int,
        vcpu: VirtualCPU,
        incoming_vocal_vcpu: Optional[VirtualCPU] = None,
        incoming_mute_vcpu: Optional[VirtualCPU] = None,
        flavor: TransitionFlavor = TransitionFlavor.MMM_TP,
        current_cycle: int = 0,
    ) -> TransitionBreakdown:
        """Dissolve the DMR pair running ``vcpu`` and hand the cores over.

        ``incoming_*_vcpu`` are the performance VCPUs about to run on the two
        cores (MMM-TP); under MMM-IPC the mute core simply idles and only the
        privileged state needs to be stashed for the next Enter DMR.
        """
        if vocal_core == mute_core:
            raise TransitionError("a DMR pair needs two distinct cores")
        breakdown = TransitionBreakdown(kind="leave_dmr", flavor=flavor)
        breakdown.sync_cycles = self._sync_cycles()
        breakdown.pipeline_cycles = self.PIPELINE_RESTART_CYCLES

        if flavor is TransitionFlavor.MMM_IPC:
            # The cores need only store their privileged state for later use.
            save_vocal = self.transfer_engine.save_privileged_state(
                vocal_core, vcpu.vcpu_id, copy=ScratchpadManager.PRIMARY
            )
            save_mute = self.transfer_engine.save_privileged_state(
                mute_core, vcpu.vcpu_id, copy=ScratchpadManager.REDUNDANT
            )
            breakdown.save_cycles = save_vocal.cycles + save_mute.cycles
        else:
            # MMM-TP: both cores store all state; the mute's cache must then
            # be flushed because it mixes coherent and incoherent lines.
            save_vocal = self.transfer_engine.save_state(vocal_core, vcpu.vcpu_id)
            save_mute = self.transfer_engine.save_state(
                mute_core, vcpu.vcpu_id, copy=ScratchpadManager.REDUNDANT
            )
            breakdown.save_cycles = save_vocal.cycles + save_mute.cycles
            flush = self.hierarchy.flush_l2(mute_core)
            breakdown.flush_cycles = flush.cycles
            breakdown.details.add("flush_lines_inspected", flush.lines_inspected)
            breakdown.details.add("flush_dirty_writebacks", flush.dirty_writebacks)

        self._snapshot_redundant(vcpu)

        if incoming_vocal_vcpu is not None:
            result = self.transfer_engine.load_state(vocal_core, incoming_vocal_vcpu.vcpu_id)
            breakdown.load_cycles += result.cycles
        if incoming_mute_vcpu is not None:
            result = self.transfer_engine.load_state(mute_core, incoming_mute_vcpu.vcpu_id)
            breakdown.load_cycles += result.cycles

        self.stats.add("leave_dmr_transitions")
        self.stats.add("leave_dmr_cycles", breakdown.total_cycles)
        return breakdown

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #

    def reset_stats(self) -> None:
        """Zero the transition counters (start of a measurement window).

        Only the statistics are cleared; the redundant privileged-register
        snapshots are machine state and survive, so verification keeps
        working across the measurement boundary.
        """
        self.stats = StatSet()

    def average_enter_cycles(self) -> float:
        """Average cost of the Enter-DMR transitions performed so far."""
        count = self.stats.get("enter_dmr_transitions")
        if count == 0:
            return 0.0
        return self.stats.get("enter_dmr_cycles") / count

    def average_leave_cycles(self) -> float:
        """Average cost of the Leave-DMR transitions performed so far."""
        count = self.stats.get("leave_dmr_transitions")
        if count == 0:
            return 0.0
        return self.stats.get("leave_dmr_cycles") / count
