"""Reliability modes and mode-decision helpers.

The per-VCPU reliability register itself lives with the VCPU
(:class:`repro.virt.vcpu.ReliabilityMode`); this module re-exports it and adds
the small pieces of policy the paper states in Sections 2 and 3.4.2:

* software at the highest privilege level always runs reliably,
* a VCPU in ``PERFORMANCE_USER_ONLY`` mode must transition to DMR whenever it
  enters privileged code (system call, trap, interrupt), and
* a VCPU in ``PERFORMANCE`` mode never transitions (used for whole guest VMs
  whose OS the paper chooses not to protect).
"""

from __future__ import annotations

from repro.isa.instructions import PrivilegeLevel
from repro.virt.vcpu import ReliabilityMode

__all__ = ["ReliabilityMode", "requires_dmr", "is_mode_transition_boundary"]


def requires_dmr(mode: ReliabilityMode, privilege: PrivilegeLevel) -> bool:
    """Whether code at ``privilege`` must run redundantly under ``mode``.

    The most privileged software (the OS of a single-OS system or the VMM of
    a consolidated server) always runs reliably regardless of the VCPU's
    register value -- a fault while executing it could corrupt state used on
    behalf of reliable applications.
    """
    if privilege is PrivilegeLevel.HYPERVISOR:
        return True
    if mode is ReliabilityMode.RELIABLE:
        return True
    if mode is ReliabilityMode.PERFORMANCE:
        return False
    return privilege is not PrivilegeLevel.USER


def is_mode_transition_boundary(
    mode: ReliabilityMode, from_privilege: PrivilegeLevel, to_privilege: PrivilegeLevel
) -> bool:
    """True when moving between the two privilege levels forces a mode switch."""
    return requires_dmr(mode, from_privilege) != requires_dmr(mode, to_privilege)
