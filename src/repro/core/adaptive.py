"""Adaptive (duty-cycled) reliability — the paper's future-work extension.

Section 3.3 of the paper deliberately leaves the OS/application interface for
the per-VCPU reliability register undefined and notes that "some applications
may desire a finer granularity of control"; the related-work discussion points
at Walcott et al., who toggle redundancy on and off to bound a program's
architectural vulnerability rather than protecting it continuously.

This module implements that extension on top of the MMM machinery:

* :class:`AdaptiveReliabilityController` tracks, per VCPU, how much committed
  work has gone *unprotected* and decides each quantum whether the VCPU
  should run under DMR, so that the long-run protected fraction of its
  instructions stays at (or above) a target duty cycle.
* :class:`AdaptiveMmmPolicy` is a drop-in mapping policy (registered as
  ``"mmm-adaptive"``) that applies those decisions before delegating the
  actual placement to the MMM-TP logic: VCPUs the controller wants protected
  get a vocal/mute pair this quantum, the others run alone in performance
  mode with the PAB guarding their stores.

The result sits between the two static extremes the paper evaluates: a VCPU
with ``protected_fraction=1.0`` behaves like the always-DMR baseline, one
with ``protected_fraction=0.0`` like MMM-TP's performance mode, and anything
in between trades throughput for vulnerability in a controlled way.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.policies import MmmTpPolicy, PairFactory, register_policy
from repro.errors import ConfigurationError
from repro.virt.scheduler import CoreAllocator, MappingPlan
from repro.virt.vcpu import ReliabilityMode, VirtualCPU


@dataclass
class _VcpuProtectionState:
    """Book-keeping the controller maintains for one VCPU."""

    last_seen_instructions: int = 0
    protected_instructions: int = 0
    unprotected_instructions: int = 0
    #: Decision taken for the quantum currently (or last) executed.
    protect_this_quantum: bool = True

    @property
    def observed_instructions(self) -> int:
        """Instructions attributed to either bucket so far."""
        return self.protected_instructions + self.unprotected_instructions

    def protected_fraction(self) -> float:
        """Fraction of observed instructions that ran under DMR."""
        observed = self.observed_instructions
        if observed == 0:
            return 1.0
        return self.protected_instructions / observed


@dataclass
class AdaptiveReliabilityController:
    """Decides, per quantum, which VCPUs must run redundantly.

    Parameters
    ----------
    target_protected_fraction:
        Long-run fraction of each VCPU's committed instructions that must be
        executed under DMR.  ``1.0`` degenerates to always-DMR, ``0.0`` to
        pure performance mode.
    hysteresis:
        Dead-band around the target that prevents the controller from
        flapping between modes every quantum.
    """

    target_protected_fraction: float = 0.5
    hysteresis: float = 0.05
    _states: Dict[int, _VcpuProtectionState] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.target_protected_fraction <= 1.0:
            raise ConfigurationError("target_protected_fraction must be in [0, 1]")
        if not 0.0 <= self.hysteresis <= 0.5:
            raise ConfigurationError("hysteresis must be in [0, 0.5]")

    def _state_for(self, vcpu: VirtualCPU) -> _VcpuProtectionState:
        return self._states.setdefault(vcpu.vcpu_id, _VcpuProtectionState())

    def _absorb_progress(self, vcpu: VirtualCPU, state: _VcpuProtectionState) -> None:
        """Attribute instructions committed since the last look to the bucket
        selected by the previous decision."""
        committed = vcpu.committed_instructions
        delta = committed - state.last_seen_instructions
        if delta < 0:
            # The simulator reset its measurement counters (end of warmup);
            # restart the attribution from the new baseline.
            state.last_seen_instructions = committed
            return
        if delta == 0:
            return
        if state.protect_this_quantum:
            state.protected_instructions += delta
        else:
            state.unprotected_instructions += delta
        state.last_seen_instructions = committed

    def wants_protection(self, vcpu: VirtualCPU) -> bool:
        """Decide whether ``vcpu`` should run under DMR for the next quantum."""
        state = self._state_for(vcpu)
        self._absorb_progress(vcpu, state)
        if state.observed_instructions == 0:
            # Nothing attributed yet: start protected (safety-first default)
            # unless the target explicitly asks for no protection at all.
            state.protect_this_quantum = self.target_protected_fraction > 0.0
            return state.protect_this_quantum
        fraction = state.protected_fraction()
        if state.protect_this_quantum:
            # Stay protected until the achieved fraction clears the target by
            # the hysteresis margin.
            decision = fraction < self.target_protected_fraction + self.hysteresis
        else:
            # Return to DMR as soon as the achieved fraction dips below the
            # target minus the margin.
            decision = fraction < self.target_protected_fraction - self.hysteresis
        if self.target_protected_fraction == 0.0:
            decision = False
        elif self.target_protected_fraction == 1.0:
            decision = True
        state.protect_this_quantum = decision
        return decision

    def protected_fraction(self, vcpu_id: int) -> float:
        """Achieved protected fraction for one VCPU (1.0 if never seen)."""
        state = self._states.get(vcpu_id)
        return state.protected_fraction() if state is not None else 1.0

    def report(self) -> Dict[int, float]:
        """Achieved protected fraction per VCPU."""
        return {
            vcpu_id: state.protected_fraction()
            for vcpu_id, state in sorted(self._states.items())
        }


class AdaptiveMmmPolicy(MmmTpPolicy):
    """MMM-TP with per-quantum, duty-cycled reliability decisions.

    VCPUs whose reliability register is ``RELIABLE`` are always protected and
    VCPUs set to ``PERFORMANCE`` never are, exactly as under MMM-TP; VCPUs in
    ``PERFORMANCE_USER_ONLY`` mode are handed to the
    :class:`AdaptiveReliabilityController`, which toggles them between DMR
    and performance execution so their protected duty cycle meets the target.
    """

    name = "mmm-adaptive"
    mixed_mode = True
    #: The controller accumulates protection debt every quantum, so the plan
    #: is *not* a pure function of the VCPUs' current DMR requirements; the
    #: simulator must re-plan (and re-consult the controller) each quantum.
    stateless_plans = False

    def __init__(
        self, controller: AdaptiveReliabilityController | None = None
    ) -> None:
        self.controller = controller or AdaptiveReliabilityController()

    def _needs_dmr(self, vcpu: VirtualCPU) -> bool:
        if vcpu.mode_register is ReliabilityMode.RELIABLE:
            return True
        if vcpu.mode_register is ReliabilityMode.PERFORMANCE:
            return False
        return self.controller.wants_protection(vcpu)

    def plan_quantum(
        self,
        vcpus: Sequence[VirtualCPU],
        allocator: CoreAllocator,
        pair_factory: PairFactory,
    ) -> MappingPlan:
        plan = MappingPlan()
        protected_ids = {vcpu.vcpu_id for vcpu in vcpus if self._needs_dmr(vcpu)}
        protected = [vcpu for vcpu in vcpus if vcpu.vcpu_id in protected_ids]
        unprotected = [vcpu for vcpu in vcpus if vcpu.vcpu_id not in protected_ids]

        from repro.cpu.timing import ExecutionMode  # local import avoids a cycle at module load

        for vcpu in protected:
            placement = self._pair_placement(vcpu, allocator, pair_factory)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)
        for vcpu in unprotected:
            placement = self._single_placement(vcpu, allocator, ExecutionMode.PERFORMANCE)
            if placement is None:
                plan.paused_vcpu_ids.append(vcpu.vcpu_id)
            else:
                plan.placements.append(placement)
        return plan


# Make the adaptive policy constructible through the normal registry
# (policy_by_name("mmm-adaptive")), like the four policies from the paper.
register_policy(AdaptiveMmmPolicy)
