"""Deterministic random number generation.

All stochastic behaviour in the simulator (synthetic workload generation,
fault arrival, address streams) flows through :class:`DeterministicRng` so
that a simulation is exactly reproducible from its seed.  The class wraps
:class:`random.Random` and adds the handful of distributions the simulator
actually needs, keeping call sites readable.
"""

from __future__ import annotations

import random
import zlib
from typing import Sequence, TypeVar

T = TypeVar("T")


class DeterministicRng:
    """A seeded random source with helpers used throughout the simulator.

    Parameters
    ----------
    seed:
        Any hashable seed.  Two instances created with the same seed produce
        identical streams of values.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._random = random.Random(seed)
        # Bound once for the hot address-sampling path below.
        self._randbelow = self._random._randbelow

    @property
    def seed(self) -> int:
        """The seed this generator was created with."""
        return self._seed

    @property
    def raw(self) -> random.Random:
        """The underlying :class:`random.Random`.

        Hot paths bind its bound methods directly (``rng.raw.random``,
        ``rng.raw.randint``) to skip the wrapper call; the value stream is
        identical to going through the helpers on this class.
        """
        return self._random

    def fork(self, label: str) -> "DeterministicRng":
        """Return an independent generator derived from this seed and ``label``.

        Forking is used to give each VCPU, workload and fault injector its own
        stream so that adding one consumer does not perturb the others.  The
        derivation uses a stable CRC (not Python's ``hash``, which is salted
        per process) so that runs are reproducible across processes.
        """
        derived = zlib.crc32(f"{self._seed}:{label}".encode("utf-8")) & 0x7FFF_FFFF
        return DeterministicRng(derived)

    def chance(self, probability: float) -> bool:
        """Return ``True`` with the given probability (clamped to [0, 1])."""
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._random.random() < probability

    def uniform(self, low: float, high: float) -> float:
        """Uniform float in ``[low, high)``."""
        return self._random.uniform(low, high)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` (inclusive)."""
        return self._random.randint(low, high)

    def geometric(self, mean: float) -> int:
        """A geometric-ish positive integer with the requested mean.

        Used for phase lengths (user instructions between OS entries, OS
        service lengths).  The distribution is a shifted geometric so the
        result is always at least 1.
        """
        if mean <= 1.0:
            return 1
        p = 1.0 / mean
        # Inverse-CDF sampling of a geometric distribution.
        u = self._random.random()
        # Guard against log(0).
        u = max(u, 1e-12)
        import math

        value = int(math.log(u) / math.log(1.0 - p)) + 1
        return max(1, value)

    def gauss_positive(self, mean: float, stddev: float) -> float:
        """A normal sample truncated below at a small positive value."""
        return max(1e-9, self._random.gauss(mean, stddev))

    def choice(self, items: Sequence[T]) -> T:
        """Pick one element uniformly."""
        return self._random.choice(items)

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Pick one element with the given (unnormalised) weights."""
        return self._random.choices(items, weights=weights, k=1)[0]

    def shuffle(self, items: list) -> None:
        """In-place Fisher-Yates shuffle."""
        self._random.shuffle(items)

    def sample_address(self, base: int, span: int, alignment: int = 1) -> int:
        """Uniform address in ``[base, base + span)`` aligned to ``alignment``."""
        if span <= 0:
            return base
        # Equivalent to ``self._random.randrange(0, span)`` (which reduces to
        # ``_randbelow(span)``) without the argument-checking overhead; the
        # underlying bit stream consumed is identical.
        offset = self._randbelow(span)
        if alignment > 1:
            offset -= offset % alignment
        return base + offset

    def hot_cold_address(
        self,
        base: int,
        hot_span: int,
        cold_span: int,
        hot_probability: float,
        alignment: int = 1,
    ) -> int:
        """Address from a hot set with high probability, else the cold span.

        This is the simple temporal-locality model used by the synthetic
        address streams: a small hot working set absorbs most accesses while
        the remainder spread over a larger cold region.
        """
        if self.chance(hot_probability) or cold_span <= hot_span:
            return self.sample_address(base, hot_span, alignment)
        return self.sample_address(base + hot_span, cold_span - hot_span, alignment)
