"""Statistics helpers: counters, running statistics, confidence intervals.

The paper reports averages over multiple runs with 95% confidence intervals;
:func:`confidence_interval_95` provides the same summary for the
reproduction's experiment runner.  :class:`StatSet` is the lightweight counter
bag every simulated component uses to expose its behaviour (cache misses,
C2C transfers, window-full cycles, PAB violations, ...).
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, Iterable, Mapping


@dataclass(frozen=True)
class ConfidenceInterval:
    """A mean together with a symmetric 95% confidence half-width."""

    mean: float
    half_width: float
    count: int

    @property
    def low(self) -> float:
        """Lower bound of the interval."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper bound of the interval."""
        return self.mean + self.half_width

    def __str__(self) -> str:
        # A half-width of 0 from n<=1 is not "no spread" but "no spread
        # *estimate*"; say so instead of printing a misleading "± 0".
        if self.count == 0:
            return "(no data)"
        if self.count == 1:
            return f"{self.mean:.4g} (single seed)"
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.count})"


# Two-sided 97.5% t quantiles for small sample sizes (index = degrees of freedom).
_T_TABLE = {
    1: 12.706,
    2: 4.303,
    3: 3.182,
    4: 2.776,
    5: 2.571,
    6: 2.447,
    7: 2.365,
    8: 2.306,
    9: 2.262,
    10: 2.228,
    15: 2.131,
    20: 2.086,
    30: 2.042,
}


@lru_cache(maxsize=None)
def _t_quantile(dof: int) -> float:
    """Approximate two-sided 95% t quantile for ``dof`` degrees of freedom.

    Memoized: the frame assembler calls this once per aggregated cell, and
    the sweep sizes mean the same handful of dof values repeat thousands of
    times (the cache is bounded by the number of distinct sample counts).
    """
    if dof <= 0:
        return 0.0
    if dof in _T_TABLE:
        return _T_TABLE[dof]
    keys = sorted(_T_TABLE)
    for key in keys:
        if dof < key:
            return _T_TABLE[key]
    return 1.96


def confidence_interval_95(values: Iterable[float]) -> ConfidenceInterval:
    """Return the sample mean and 95% confidence half-width of ``values``.

    With a single sample the half-width is zero (there is no spread to
    estimate), mirroring how the experiment runner reports single-seed runs.
    """
    data = list(values)
    if not data:
        return ConfidenceInterval(mean=0.0, half_width=0.0, count=0)
    n = len(data)
    mean = sum(data) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0, count=1)
    variance = sum((x - mean) ** 2 for x in data) / (n - 1)
    sem = math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=_t_quantile(n - 1) * sem, count=n)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean (0 if the sequence is empty)."""
    data = list(values)
    if not data:
        return 0.0
    return sum(data) / len(data)


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (0 if the sequence is empty)."""
    data = [v for v in values if v > 0]
    if not data:
        return 0.0
    return math.exp(sum(math.log(v) for v in data) / len(data))


@dataclass
class RunningStat:
    """Online mean/min/max/variance accumulator (Welford's algorithm)."""

    count: int = 0
    mean: float = 0.0
    _m2: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf

    def record(self, value: float) -> None:
        """Add one observation."""
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    @property
    def variance(self) -> float:
        """Sample variance (0 with fewer than two observations)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def stddev(self) -> float:
        """Sample standard deviation."""
        return math.sqrt(self.variance)

    def merge(self, other: "RunningStat") -> None:
        """Fold another accumulator into this one."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self._m2 = other._m2
            self.minimum = other.minimum
            self.maximum = other.maximum
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self._m2 += other._m2 + delta * delta * self.count * other.count / total
        self.mean = (self.mean * self.count + other.mean * other.count) / total
        self.count = total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)


class StatSet:
    """A named bag of integer counters with a few convenience operations.

    ``StatSet`` behaves like a ``defaultdict(int)`` with explicit methods so
    that call sites read as instrumentation rather than dictionary plumbing::

        stats.add("l2.misses")
        stats.add("cycles", 17)
        stats.merge(other_stats)
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        # A defaultdict so that hot paths holding :attr:`counters` can write
        # ``counts[name] += 1`` without a ``get`` call per event; absent
        # counters still read as 0 through :meth:`get`, matching the previous
        # plain-dict behaviour (the int default also keeps pure-integer
        # counters integral, as before).
        self._counters: Dict[str, float] = defaultdict(int)
        if initial:
            self._counters.update(initial)

    def add(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount`` (creating it at zero)."""
        self._counters[name] += amount

    @property
    def counters(self) -> Dict[str, float]:
        """The live counter dictionary (a ``defaultdict(int)``).

        Hot paths (the cache and TLB lookup loops) bind this once and bump
        entries directly (``counts[name] += 1``) instead of paying a method
        call per event; mutating it is equivalent to calling
        :meth:`add`/:meth:`set`.  Note that *reading* an absent key through
        ``[]`` creates it at 0 -- use :meth:`get` for reads.
        """
        return self._counters

    def set(self, name: str, value: float) -> None:
        """Overwrite counter ``name``."""
        self._counters[name] = value

    def get(self, name: str, default: float = 0) -> float:
        """Read counter ``name`` (``default`` when absent)."""
        return self._counters.get(name, default)

    def merge(self, other: "StatSet") -> None:
        """Add every counter of ``other`` into this set."""
        for name, value in other.items():
            self.add(name, value)

    def scaled(self, factor: float) -> "StatSet":
        """Return a copy with every counter multiplied by ``factor``."""
        return StatSet({name: value * factor for name, value in self.items()})

    def items(self):
        """Iterate over ``(name, value)`` pairs sorted by name."""
        return sorted(self._counters.items())

    def as_dict(self) -> Dict[str, float]:
        """Return a plain dictionary copy of the counters."""
        return dict(self._counters)

    def ratio(self, numerator: str, denominator: str) -> float:
        """Return ``numerator / denominator`` (0 when the denominator is 0)."""
        denom = self.get(denominator)
        if denom == 0:
            return 0.0
        return self.get(numerator) / denom

    def __contains__(self, name: str) -> bool:
        return name in self._counters

    def __len__(self) -> int:
        return len(self._counters)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.items())
        return f"StatSet({inner})"


@dataclass
class LatencyHistogram:
    """A coarse histogram of latencies, used for mode-switch breakdowns."""

    bucket_width: int = 100
    buckets: Dict[int, int] = field(default_factory=dict)
    total: int = 0
    count: int = 0

    def record(self, latency: int) -> None:
        """Record one latency observation."""
        bucket = int(latency) // self.bucket_width
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.total += int(latency)
        self.count += 1

    @property
    def mean(self) -> float:
        """Average recorded latency."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, fraction: float) -> int:
        """Approximate percentile (returns the bucket upper bound)."""
        if not self.buckets:
            return 0
        target = max(1, math.ceil(self.count * fraction))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= target:
                return (bucket + 1) * self.bucket_width
        return (max(self.buckets) + 1) * self.bucket_width
