"""Common utilities shared by every subsystem of the reproduction.

The package deliberately contains only small, dependency-free building
blocks:

* :mod:`repro.common.rng` -- deterministic random number generation,
* :mod:`repro.common.addresses` -- address, page and cache-line arithmetic,
* :mod:`repro.common.stats` -- counters, running statistics and confidence
  intervals,
* :mod:`repro.common.events` -- a tiny discrete-event queue.
"""

from repro.common.addresses import (
    AddressSpaceLayout,
    Region,
    align_down,
    align_up,
    cache_line_address,
    cache_line_index,
    page_number,
    page_offset,
)
from repro.common.events import Event, EventQueue
from repro.common.rng import DeterministicRng
from repro.common.stats import (
    ConfidenceInterval,
    RunningStat,
    StatSet,
    confidence_interval_95,
    geometric_mean,
)

__all__ = [
    "AddressSpaceLayout",
    "Region",
    "align_down",
    "align_up",
    "cache_line_address",
    "cache_line_index",
    "page_number",
    "page_offset",
    "Event",
    "EventQueue",
    "DeterministicRng",
    "ConfidenceInterval",
    "RunningStat",
    "StatSet",
    "confidence_interval_95",
    "geometric_mean",
]
