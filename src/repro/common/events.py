"""A minimal discrete-event queue.

The main simulation loop is quantum based rather than fully event driven (see
``DESIGN.md``), but a few components benefit from an ordered event queue: the
fingerprint network models in-flight fingerprints, and the fault injector
schedules fault arrivals at absolute cycle times.  :class:`EventQueue` is a
thin, deterministic wrapper over :mod:`heapq` that breaks ties by insertion
order so results do not depend on hash ordering.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, List, Optional, Tuple

from repro.errors import SimulationError


@dataclass(frozen=True)
class Event:
    """An event scheduled at an absolute cycle time."""

    time: int
    kind: str
    payload: Any = None


class EventQueue:
    """A deterministic priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, Event]] = []
        self._counter = itertools.count()
        self._now = 0

    @property
    def now(self) -> int:
        """The time of the most recently popped event (0 initially)."""
        return self._now

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def schedule(self, time: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event; scheduling in the past raises ``SimulationError``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {kind!r} at {time} before current time {self._now}"
            )
        event = Event(time=time, kind=kind, payload=payload)
        heapq.heappush(self._heap, (time, next(self._counter), event))
        return event

    def schedule_after(self, delay: int, kind: str, payload: Any = None) -> Event:
        """Schedule an event ``delay`` cycles after the current time."""
        return self.schedule(self._now + delay, kind, payload)

    def peek(self) -> Optional[Event]:
        """Return (without removing) the earliest event, or ``None``."""
        if not self._heap:
            return None
        return self._heap[0][2]

    def pop(self) -> Event:
        """Remove and return the earliest event, advancing the clock."""
        if not self._heap:
            raise SimulationError("pop() on an empty event queue")
        time, _, event = heapq.heappop(self._heap)
        self._now = time
        return event

    def pop_until(self, time: int) -> Iterator[Event]:
        """Yield and remove every event scheduled at or before ``time``."""
        while self._heap and self._heap[0][0] <= time:
            yield self.pop()
        if time > self._now:
            self._now = time

    def drain(self, handler: Callable[[Event], None]) -> int:
        """Pop every event, calling ``handler`` on each; return the count."""
        handled = 0
        while self._heap:
            handler(self.pop())
            handled += 1
        return handled
