"""Address arithmetic and the simulated physical address-space layout.

The simulator works with flat integer physical and virtual addresses.  This
module provides the small helpers used everywhere (page / cache line
extraction, alignment) and :class:`AddressSpaceLayout`, which carves the
simulated physical address space into the regions the paper relies on:

* per-VM private memory (user and kernel portions),
* a shared region inside each VM (for cache-to-cache transfer behaviour),
* the reserved *scratchpad* region used to save and restore VCPU state during
  mode transitions (Section 3.4.3 of the paper),
* the memory-resident Protection Assistance Table (PAT, Section 3.4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

#: Default page size used by the reproduction (the paper's PAT uses 8 KB pages).
DEFAULT_PAGE_SIZE = 8 * 1024

#: Default cache line size (64 bytes, matching the paper's PAB line granularity).
DEFAULT_LINE_SIZE = 64


def align_down(value: int, alignment: int) -> int:
    """Round ``value`` down to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ConfigurationError(f"alignment must be positive, got {alignment}")
    return value - (value % alignment)


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to a multiple of ``alignment``."""
    if alignment <= 0:
        raise ConfigurationError(f"alignment must be positive, got {alignment}")
    remainder = value % alignment
    if remainder == 0:
        return value
    return value + alignment - remainder


def page_number(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the page number containing ``address``."""
    return address // page_size


def page_offset(address: int, page_size: int = DEFAULT_PAGE_SIZE) -> int:
    """Return the offset of ``address`` within its page."""
    return address % page_size


def cache_line_address(address: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the address of the first byte of the line containing ``address``."""
    return align_down(address, line_size)


def cache_line_index(address: int, line_size: int = DEFAULT_LINE_SIZE) -> int:
    """Return the line number (address divided by line size)."""
    return address // line_size


@dataclass(frozen=True)
class Region:
    """A contiguous region of the simulated physical address space."""

    name: str
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size

    def contains(self, address: int) -> bool:
        """True when ``address`` falls inside this region."""
        return self.base <= address < self.end

    def offset_address(self, offset: int) -> int:
        """Return ``base + offset``, checking bounds."""
        if offset < 0 or offset >= self.size:
            raise ConfigurationError(
                f"offset {offset:#x} outside region {self.name!r} of size {self.size:#x}"
            )
        return self.base + offset


@dataclass
class AddressSpaceLayout:
    """Layout of the simulated physical address space.

    The layout allocates, in order: one private region per VM (each with a
    user sub-region, kernel sub-region, and shared sub-region), the scratchpad
    used for VCPU state during mode transitions, and the PAT backing store.

    Parameters
    ----------
    vm_memory_bytes:
        Size of each VM's private physical memory region.
    num_vms:
        Number of guest VMs (one is used for single-OS experiments).
    scratchpad_bytes:
        Size of the reserved scratchpad region.
    page_size:
        Page size used when rounding regions.
    """

    vm_memory_bytes: int = 16 * 1024 * 1024
    num_vms: int = 2
    scratchpad_bytes: int = 1024 * 1024
    pat_bytes: int = 1024 * 1024
    page_size: int = DEFAULT_PAGE_SIZE
    shared_fraction: float = 0.25
    kernel_fraction: float = 0.25
    _regions: dict = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if self.num_vms < 1:
            raise ConfigurationError("layout needs at least one VM region")
        if self.vm_memory_bytes < 4 * self.page_size:
            raise ConfigurationError("vm_memory_bytes is too small to be useful")
        cursor = 0
        for vm_id in range(self.num_vms):
            vm_base = cursor
            vm_size = align_up(self.vm_memory_bytes, self.page_size)
            kernel_size = align_up(
                int(vm_size * self.kernel_fraction), self.page_size
            )
            shared_size = align_up(
                int(vm_size * self.shared_fraction), self.page_size
            )
            user_size = vm_size - kernel_size - shared_size
            self._regions[f"vm{vm_id}"] = Region(f"vm{vm_id}", vm_base, vm_size)
            self._regions[f"vm{vm_id}.user"] = Region(
                f"vm{vm_id}.user", vm_base, user_size
            )
            self._regions[f"vm{vm_id}.shared"] = Region(
                f"vm{vm_id}.shared", vm_base + user_size, shared_size
            )
            self._regions[f"vm{vm_id}.kernel"] = Region(
                f"vm{vm_id}.kernel", vm_base + user_size + shared_size, kernel_size
            )
            cursor = vm_base + vm_size
        scratch_size = align_up(self.scratchpad_bytes, self.page_size)
        self._regions["scratchpad"] = Region("scratchpad", cursor, scratch_size)
        cursor += scratch_size
        pat_size = align_up(self.pat_bytes, self.page_size)
        self._regions["pat"] = Region("pat", cursor, pat_size)
        cursor += pat_size
        self._regions["__total__"] = Region("__total__", 0, cursor)

    @property
    def total_bytes(self) -> int:
        """Total simulated physical memory covered by the layout."""
        return self._regions["__total__"].size

    def region(self, name: str) -> Region:
        """Return a named region.

        Valid names are ``vm<N>``, ``vm<N>.user``, ``vm<N>.shared``,
        ``vm<N>.kernel``, ``scratchpad`` and ``pat``.
        """
        try:
            return self._regions[name]
        except KeyError as exc:
            raise ConfigurationError(f"unknown region {name!r}") from exc

    def vm_region(self, vm_id: int) -> Region:
        """Whole private region of VM ``vm_id``."""
        return self.region(f"vm{vm_id}")

    def user_region(self, vm_id: int) -> Region:
        """User-data portion of VM ``vm_id``."""
        return self.region(f"vm{vm_id}.user")

    def shared_region(self, vm_id: int) -> Region:
        """Shared-data portion of VM ``vm_id`` (touched by several VCPUs)."""
        return self.region(f"vm{vm_id}.shared")

    def kernel_region(self, vm_id: int) -> Region:
        """Kernel/OS portion of VM ``vm_id``."""
        return self.region(f"vm{vm_id}.kernel")

    def scratchpad_region(self) -> Region:
        """Scratchpad region used to hold VCPU state during mode switches."""
        return self.region("scratchpad")

    def pat_region(self) -> Region:
        """Region backing the Protection Assistance Table."""
        return self.region("pat")

    def owner_of(self, address: int) -> str:
        """Return the name of the top-level region owning ``address``."""
        for name, region in self._regions.items():
            if name == "__total__" or "." in name:
                continue
            if region.contains(address):
                return name
        raise ConfigurationError(f"address {address:#x} outside the simulated memory")

    def scratchpad_slot(self, slot_index: int, slot_bytes: int) -> Region:
        """Return a sub-region of the scratchpad for one VCPU save area."""
        scratch = self.scratchpad_region()
        base = scratch.base + slot_index * slot_bytes
        if base + slot_bytes > scratch.end:
            raise ConfigurationError(
                f"scratchpad slot {slot_index} (size {slot_bytes}) exceeds the "
                f"scratchpad region of {scratch.size} bytes"
            )
        return Region(f"scratchpad.slot{slot_index}", base, slot_bytes)
