"""System configuration for the mixed-mode multicore reproduction.

:mod:`repro.config.system` defines frozen dataclasses describing every
hardware parameter the simulator uses; :mod:`repro.config.presets` provides
the paper's 16-core target configuration and a scaled-down configuration used
by the test suite.
"""

from repro.config.presets import (
    evaluation_system_config,
    paper_system_config,
    small_system_config,
)
from repro.config.system import (
    CacheConfig,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    PabConfig,
    ReunionConfig,
    SystemConfig,
    VirtualizationConfig,
)

__all__ = [
    "CacheConfig",
    "CoreConfig",
    "InterconnectConfig",
    "MemoryConfig",
    "PabConfig",
    "ReunionConfig",
    "SystemConfig",
    "VirtualizationConfig",
    "evaluation_system_config",
    "paper_system_config",
    "small_system_config",
]
