"""Hardware configuration dataclasses.

Every structural and timing parameter of the simulated machine lives here, in
immutable dataclasses, so that experiments are fully described by a
:class:`SystemConfig` value plus a workload specification.  The defaults of
each dataclass match the target multicore of the paper (Section 4.1):

* 16 out-of-order cores, 2-wide issue, 8-stage pipeline (9 with Reunion's
  Check stage), 128-entry instruction window, 32+32 entry load/store queue,
  3 GHz;
* split 16 KB 2-way write-through L1 I/D caches, 512 KB 4-way private L2,
  8 MB 16-way shared L3 that is exclusive with the L2s, 55-cycle L3 load-to-use
  latency;
* MOSI directory coherence over a point-to-point interconnect with an average
  10-cycle hop latency, 350-cycle main memory, 40 GB/s off-chip bandwidth;
* a dedicated fingerprint network with a 10-cycle latency;
* a 128-entry PAB holding 64-byte blocks of PAT entries.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from repro.errors import ConfigurationError


def _require(condition: bool, message: str) -> None:
    """Raise :class:`ConfigurationError` when ``condition`` is false."""
    if not condition:
        raise ConfigurationError(message)


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class PabLookupMode(str, Enum):
    """Whether the PAB is consulted in parallel with, or serially before, the L2."""

    PARALLEL = "parallel"
    SERIAL = "serial"


class ConsistencyModel(str, Enum):
    """Memory consistency model used by the cores.

    The paper's configuration uses sequential consistency (SC), which makes
    stores occupy instruction-window entries until they reach the cache.  The
    original Reunion proposal used TSO with a store buffer; the ablation
    benchmark compares both.
    """

    SEQUENTIAL = "sc"
    TSO = "tso"


@dataclass(frozen=True)
class CoreConfig:
    """Parameters of one out-of-order core."""

    pipeline_stages: int = 8
    issue_width: int = 2
    window_entries: int = 128
    lsq_load_entries: int = 32
    lsq_store_entries: int = 32
    frequency_ghz: float = 3.0
    consistency: ConsistencyModel = ConsistencyModel.SEQUENTIAL
    #: Extra cycles a serialising instruction spends draining the pipeline
    #: before it may execute (on top of waiting for the window to empty).
    serializing_drain_cycles: int = 10
    #: Branch misprediction penalty in cycles (front-end refill).
    branch_penalty_cycles: int = 8
    #: Fraction of branches that mispredict in the synthetic streams.
    branch_mispredict_rate: float = 0.04

    def validate(self) -> None:
        """Check internal consistency of the core parameters."""
        _require(self.pipeline_stages >= 4, "pipeline needs at least 4 stages")
        _require(self.issue_width >= 1, "issue width must be at least 1")
        _require(self.window_entries >= 8, "instruction window too small")
        _require(self.lsq_load_entries >= 1, "load queue too small")
        _require(self.lsq_store_entries >= 1, "store queue too small")
        _require(self.frequency_ghz > 0, "core frequency must be positive")
        _require(
            0.0 <= self.branch_mispredict_rate <= 1.0,
            "branch mispredict rate must be a probability",
        )


@dataclass(frozen=True)
class CacheConfig:
    """Parameters of one cache level."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency: int = 2
    write_through: bool = False
    shared: bool = False
    exclusive_of_upper: bool = False

    @property
    def num_lines(self) -> int:
        """Total number of lines in the cache."""
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        """Number of sets (lines divided by associativity)."""
        return self.num_lines // self.associativity

    def validate(self) -> None:
        """Check the cache geometry is realisable."""
        _require(self.size_bytes > 0, f"{self.name}: size must be positive")
        _require(self.associativity >= 1, f"{self.name}: associativity must be >= 1")
        _require(_is_power_of_two(self.line_bytes), f"{self.name}: line size must be a power of two")
        _require(
            self.size_bytes % self.line_bytes == 0,
            f"{self.name}: size must be a multiple of the line size",
        )
        _require(
            self.num_lines % self.associativity == 0,
            f"{self.name}: line count must be divisible by associativity",
        )
        _require(self.hit_latency >= 1, f"{self.name}: hit latency must be >= 1 cycle")


@dataclass(frozen=True)
class MemoryConfig:
    """Main-memory latency and bandwidth."""

    load_to_use_latency: int = 350
    bandwidth_gb_per_s: float = 40.0
    #: Bytes transferred per cycle at the configured bandwidth and 3 GHz.
    #: Derived in :meth:`bytes_per_cycle`, kept explicit for clarity.
    frequency_ghz: float = 3.0

    def bytes_per_cycle(self) -> float:
        """Off-chip bandwidth expressed in bytes per core cycle."""
        return (self.bandwidth_gb_per_s * 1e9) / (self.frequency_ghz * 1e9)

    def validate(self) -> None:
        """Check latency/bandwidth are positive."""
        _require(self.load_to_use_latency > 0, "memory latency must be positive")
        _require(self.bandwidth_gb_per_s > 0, "memory bandwidth must be positive")


@dataclass(frozen=True)
class InterconnectConfig:
    """On-chip point-to-point interconnect and fingerprint network."""

    hop_latency: int = 10
    #: Latency of a 3-hop cache-to-cache transfer (requester -> directory ->
    #: owner -> requester); the paper notes these cost more than a 2-hop L3 hit.
    cache_to_cache_hops: int = 3
    fingerprint_latency: int = 10
    link_bytes_per_cycle: float = 64.0

    def cache_to_cache_latency(self) -> int:
        """Latency added by a dirty cache-to-cache transfer."""
        return self.hop_latency * self.cache_to_cache_hops

    def validate(self) -> None:
        """Check interconnect latencies are positive."""
        _require(self.hop_latency > 0, "hop latency must be positive")
        _require(self.cache_to_cache_hops >= 2, "C2C transfers need at least 2 hops")
        _require(self.fingerprint_latency >= 0, "fingerprint latency cannot be negative")


@dataclass(frozen=True)
class ReunionConfig:
    """Parameters of the Reunion loose lock-stepping DMR substrate."""

    #: Number of instructions summarised by one fingerprint.
    fingerprint_interval: int = 16
    #: Additional in-order pipeline stage added by Reunion (Check).
    check_stage_cycles: int = 1
    #: Penalty (cycles) to recover from a fingerprint mismatch: squash both
    #: cores, re-execute from the last verified point via the serial request
    #: path, as in the original proposal.
    recovery_penalty_cycles: int = 200
    #: Extra cycles a serialising instruction pays for the pre-execution
    #: validation round trip between vocal and mute.
    serializing_check_cycles: int = 20

    def validate(self) -> None:
        """Check DMR parameters are sensible."""
        _require(self.fingerprint_interval >= 1, "fingerprint interval must be >= 1")
        _require(self.check_stage_cycles >= 0, "check stage cycles cannot be negative")
        _require(self.recovery_penalty_cycles >= 0, "recovery penalty cannot be negative")


@dataclass(frozen=True)
class PabConfig:
    """Protection Assistance Buffer geometry and lookup policy."""

    entries: int = 128
    entry_bytes: int = 64
    lookup_mode: PabLookupMode = PabLookupMode.PARALLEL
    serial_lookup_latency: int = 2
    page_bytes: int = 8 * 1024

    @property
    def pages_per_entry(self) -> int:
        """Number of 8 KB pages whose PAT bits fit in one PAB entry."""
        return self.entry_bytes * 8

    @property
    def mapped_bytes(self) -> int:
        """Bytes of physical memory mapped by a full PAB."""
        return self.entries * self.pages_per_entry * self.page_bytes

    @property
    def storage_bytes(self) -> int:
        """Approximate storage of the PAB (data plus ~2 bytes of tag per entry)."""
        return self.entries * (self.entry_bytes + 2)

    def validate(self) -> None:
        """Check the PAB geometry."""
        _require(self.entries >= 1, "PAB needs at least one entry")
        _require(_is_power_of_two(self.entries), "PAB entry count must be a power of two")
        _require(self.entry_bytes >= 1, "PAB entry must hold at least one byte")
        _require(self.serial_lookup_latency >= 0, "PAB latency cannot be negative")
        _require(_is_power_of_two(self.page_bytes), "PAT page size must be a power of two")


@dataclass(frozen=True)
class VirtualizationConfig:
    """Hardware virtualisation layer parameters (Section 3.5 of the paper)."""

    #: Gang-scheduling timeslice in cycles (the paper uses 1 ms = 3 M cycles;
    #: experiments scale this down, keeping the ratio to the run length).
    timeslice_cycles: int = 3_000_000
    #: Size of one VCPU's architected state (about 2.3 KB for SPARC).
    vcpu_state_bytes: int = 2_355
    #: Latency of the core-local state machine steps that do not touch memory
    #: (synchronising the pair, swapping mode bits).
    sync_cycles: int = 30
    #: Whether the scheduler may expose more VCPUs than core pairs (overcommit).
    allow_overcommit: bool = True

    @property
    def vcpu_state_lines(self) -> int:
        """Number of 64-byte lines needed to hold one VCPU's state."""
        return (self.vcpu_state_bytes + 63) // 64

    def validate(self) -> None:
        """Check virtualisation parameters."""
        _require(self.timeslice_cycles > 0, "timeslice must be positive")
        _require(self.vcpu_state_bytes > 0, "VCPU state size must be positive")
        _require(self.sync_cycles >= 0, "sync cycles cannot be negative")


@dataclass(frozen=True)
class TlbConfig:
    """TLB geometry; the paper models a hardware-filled TLB."""

    entries: int = 128
    fill_latency: int = 30
    hardware_filled: bool = True

    def validate(self) -> None:
        """Check the TLB geometry."""
        _require(self.entries >= 1, "TLB needs at least one entry")
        _require(self.fill_latency >= 0, "TLB fill latency cannot be negative")


@dataclass(frozen=True)
class SystemConfig:
    """The full machine description used by every experiment."""

    num_cores: int = 16
    core: CoreConfig = field(default_factory=CoreConfig)
    l1i: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1I", size_bytes=16 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        )
    )
    l1d: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L1D", size_bytes=16 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L2", size_bytes=512 * 1024, associativity=4, hit_latency=12,
        )
    )
    l3: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            name="L3", size_bytes=8 * 1024 * 1024, associativity=16, hit_latency=55,
            shared=True, exclusive_of_upper=True,
        )
    )
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    reunion: ReunionConfig = field(default_factory=ReunionConfig)
    pab: PabConfig = field(default_factory=PabConfig)
    tlb: TlbConfig = field(default_factory=TlbConfig)
    virtualization: VirtualizationConfig = field(default_factory=VirtualizationConfig)

    @property
    def max_dmr_pairs(self) -> int:
        """Maximum number of simultaneously executing DMR pairs."""
        return self.num_cores // 2

    def validate(self) -> "SystemConfig":
        """Validate every sub-configuration and cross-cutting constraints.

        Returns ``self`` so the call can be chained at construction sites.
        """
        _require(self.num_cores >= 2, "mixed-mode needs at least two cores")
        _require(self.num_cores % 2 == 0, "DMR pairing needs an even core count")
        self.core.validate()
        for cache in (self.l1i, self.l1d, self.l2, self.l3):
            cache.validate()
        _require(
            self.l1d.line_bytes == self.l2.line_bytes == self.l3.line_bytes,
            "all cache levels must share one line size",
        )
        _require(not self.l1d.shared, "L1 caches are private per core")
        _require(not self.l2.shared, "L2 caches are private per core")
        _require(self.l3.shared, "the L3 cache is shared")
        self.memory.validate()
        self.interconnect.validate()
        self.reunion.validate()
        self.pab.validate()
        self.tlb.validate()
        self.virtualization.validate()
        return self

    def with_pab_lookup(self, mode: PabLookupMode) -> "SystemConfig":
        """Return a copy of this configuration with a different PAB lookup mode."""
        return replace(self, pab=replace(self.pab, lookup_mode=mode))

    def with_window_entries(self, entries: int) -> "SystemConfig":
        """Return a copy with a different instruction-window size (ablation)."""
        return replace(self, core=replace(self.core, window_entries=entries))

    def with_consistency(self, model: ConsistencyModel) -> "SystemConfig":
        """Return a copy with a different memory consistency model (ablation)."""
        return replace(self, core=replace(self.core, consistency=model))

    def with_timeslice(self, cycles: int) -> "SystemConfig":
        """Return a copy with a different gang-scheduling timeslice."""
        return replace(
            self,
            virtualization=replace(self.virtualization, timeslice_cycles=cycles),
        )
