"""Ready-made system configurations.

``paper_system_config`` reproduces the target multicore of Section 4.1 of the
paper.  ``small_system_config`` is a deliberately small machine (4 cores,
small caches, short timeslices) used by the unit tests and quick examples so
that they run in well under a second while exercising exactly the same code
paths.
"""

from __future__ import annotations

from repro.config.system import (
    CacheConfig,
    CoreConfig,
    InterconnectConfig,
    MemoryConfig,
    PabConfig,
    ReunionConfig,
    SystemConfig,
    TlbConfig,
    VirtualizationConfig,
)


def paper_system_config(timeslice_cycles: int = 30_000) -> SystemConfig:
    """The paper's 16-core target machine.

    Parameters
    ----------
    timeslice_cycles:
        Gang-scheduling timeslice.  The paper uses 1 ms (3 million cycles at
        3 GHz) with 100 M-cycle simulations; the reproduction scales both down
        by default (the ratio of timeslice to run length is what matters for
        the consolidated-server results).  Pass ``3_000_000`` to use the
        paper's literal value.
    """
    config = SystemConfig(
        num_cores=16,
        core=CoreConfig(
            pipeline_stages=8,
            issue_width=2,
            window_entries=128,
            lsq_load_entries=32,
            lsq_store_entries=32,
            frequency_ghz=3.0,
        ),
        l1i=CacheConfig(
            name="L1I", size_bytes=16 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        ),
        l1d=CacheConfig(
            name="L1D", size_bytes=16 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        ),
        l2=CacheConfig(name="L2", size_bytes=512 * 1024, associativity=4, hit_latency=12),
        l3=CacheConfig(
            name="L3", size_bytes=8 * 1024 * 1024, associativity=16, hit_latency=55,
            shared=True, exclusive_of_upper=True,
        ),
        memory=MemoryConfig(load_to_use_latency=350, bandwidth_gb_per_s=40.0),
        interconnect=InterconnectConfig(hop_latency=10, fingerprint_latency=10),
        reunion=ReunionConfig(),
        pab=PabConfig(entries=128),
        tlb=TlbConfig(entries=128, fill_latency=30, hardware_filled=True),
        virtualization=VirtualizationConfig(timeslice_cycles=timeslice_cycles),
    )
    return config.validate()


def evaluation_system_config(
    capacity_scale: int = 8, timeslice_cycles: int = 25_000
) -> SystemConfig:
    """The paper's machine with cache capacities scaled down for fast runs.

    A pure-Python simulation cannot run the paper's 100 M-cycle windows, so
    the benchmark harness scales *capacities* (L1/L2/L3 sizes, TLB entries)
    and workload footprints down by the same factor while keeping every
    latency, width and structural parameter of the paper configuration.
    Because capacities and footprints shrink together, hit/miss behaviour --
    and therefore the relative results the paper reports -- is preserved
    while steady state is reached within tens of thousands of cycles.

    ``capacity_scale=1`` returns the full paper configuration.
    """
    if capacity_scale < 1:
        raise ValueError("capacity_scale must be at least 1")
    paper = paper_system_config(timeslice_cycles=timeslice_cycles)
    if capacity_scale == 1:
        return paper
    scaled = SystemConfig(
        num_cores=paper.num_cores,
        core=paper.core,
        l1i=CacheConfig(
            name="L1I",
            size_bytes=max(1024, paper.l1i.size_bytes // capacity_scale),
            associativity=paper.l1i.associativity,
            hit_latency=paper.l1i.hit_latency,
            write_through=True,
        ),
        l1d=CacheConfig(
            name="L1D",
            size_bytes=max(1024, paper.l1d.size_bytes // capacity_scale),
            associativity=paper.l1d.associativity,
            hit_latency=paper.l1d.hit_latency,
            write_through=True,
        ),
        l2=CacheConfig(
            name="L2",
            size_bytes=max(8 * 1024, paper.l2.size_bytes // capacity_scale),
            associativity=paper.l2.associativity,
            hit_latency=paper.l2.hit_latency,
        ),
        l3=CacheConfig(
            name="L3",
            size_bytes=max(64 * 1024, paper.l3.size_bytes // capacity_scale),
            associativity=paper.l3.associativity,
            hit_latency=paper.l3.hit_latency,
            shared=True,
            exclusive_of_upper=True,
        ),
        memory=paper.memory,
        interconnect=paper.interconnect,
        reunion=paper.reunion,
        pab=paper.pab,
        tlb=TlbConfig(
            entries=max(16, paper.tlb.entries // 2),
            fill_latency=paper.tlb.fill_latency,
            hardware_filled=True,
        ),
        virtualization=VirtualizationConfig(timeslice_cycles=timeslice_cycles),
    )
    return scaled.validate()


def small_system_config(timeslice_cycles: int = 4_000) -> SystemConfig:
    """A 4-core machine with small caches for fast unit tests.

    The relative structure (write-through L1s, private L2, shared exclusive
    L3, DMR pairing, PAB) is identical to the paper configuration; only sizes
    and latencies are reduced so that tests finish quickly.
    """
    config = SystemConfig(
        num_cores=4,
        core=CoreConfig(
            pipeline_stages=8,
            issue_width=2,
            window_entries=32,
            lsq_load_entries=8,
            lsq_store_entries=8,
            frequency_ghz=3.0,
        ),
        l1i=CacheConfig(
            name="L1I", size_bytes=2 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        ),
        l1d=CacheConfig(
            name="L1D", size_bytes=2 * 1024, associativity=2, hit_latency=1,
            write_through=True,
        ),
        l2=CacheConfig(name="L2", size_bytes=16 * 1024, associativity=4, hit_latency=8),
        l3=CacheConfig(
            name="L3", size_bytes=128 * 1024, associativity=8, hit_latency=30,
            shared=True, exclusive_of_upper=True,
        ),
        memory=MemoryConfig(load_to_use_latency=200, bandwidth_gb_per_s=40.0),
        interconnect=InterconnectConfig(hop_latency=8, fingerprint_latency=8),
        reunion=ReunionConfig(fingerprint_interval=8),
        pab=PabConfig(entries=16),
        tlb=TlbConfig(entries=32, fill_latency=20),
        virtualization=VirtualizationConfig(
            timeslice_cycles=timeslice_cycles, vcpu_state_bytes=2_355
        ),
    )
    return config.validate()
