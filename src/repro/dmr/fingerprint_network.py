"""Dedicated fingerprint exchange network.

The paper assumes a dedicated network with a 10-cycle latency for exchanging
fingerprints between the two halves of a DMR pair (as in the original Reunion
evaluation).  The network here tracks exchanges and, optionally, in-flight
fingerprints on a small event queue so tests can verify ordering and latency
accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.events import EventQueue
from repro.common.stats import StatSet
from repro.config.system import InterconnectConfig
from repro.isa.fingerprints import Fingerprint


@dataclass(frozen=True)
class FingerprintDelivery:
    """A fingerprint that has arrived at the partner core."""

    sender_core: int
    receiver_core: int
    fingerprint: Fingerprint
    arrival_cycle: int


class FingerprintNetwork:
    """Models the point-to-point fingerprint links of all DMR pairs."""

    def __init__(self, config: InterconnectConfig) -> None:
        self.config = config
        self.stats = StatSet()
        self._queue = EventQueue()

    @property
    def latency(self) -> int:
        """One-way latency of a fingerprint message."""
        return self.config.fingerprint_latency

    def exchange_latency(self) -> int:
        """Latency for both cores to have seen each other's fingerprint.

        The two messages travel concurrently, so the exchange completes after
        a single network traversal plus the comparison itself (charged by the
        caller).
        """
        self.stats.add("exchanges")
        return self.latency

    def send(
        self,
        sender_core: int,
        receiver_core: int,
        fingerprint: Fingerprint,
        now: int,
    ) -> FingerprintDelivery:
        """Explicitly model one fingerprint message (used by detailed tests)."""
        arrival = now + self.latency
        delivery = FingerprintDelivery(
            sender_core=sender_core,
            receiver_core=receiver_core,
            fingerprint=fingerprint,
            arrival_cycle=arrival,
        )
        self._queue.schedule(arrival, "fingerprint", delivery)
        self.stats.add("messages")
        return delivery

    def deliveries_until(self, cycle: int) -> list[FingerprintDelivery]:
        """Pop every message that has arrived by ``cycle``."""
        return [event.payload for event in self._queue.pop_until(cycle)]

    def pending(self) -> Optional[FingerprintDelivery]:
        """The next in-flight message, if any (without removing it)."""
        event = self._queue.peek()
        return event.payload if event is not None else None
