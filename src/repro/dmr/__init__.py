"""Reunion-style Dual-Modular Redundancy substrate.

Reunion ("loose lock-stepping") pairs two cores into one logical processor:
the *vocal* core is the coherent master, the *mute* core redundantly executes
the same instruction stream through its own private cache hierarchy without
exposing any values.  Both cores compute fingerprints over their retiring
instructions and exchange them over a dedicated network; a mismatch indicates
a fault (or mute incoherence) and triggers recovery before anything reaches
architected state.
"""

from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.dmr.reunion import CheckOutcome, ReunionPair

__all__ = ["FingerprintNetwork", "CheckOutcome", "ReunionPair"]
