"""Reunion DMR pairing and fingerprint comparison.

:class:`ReunionPair` binds a vocal and a mute core into one logical
processor.  Functionally it maintains one fingerprint unit per core, feeds
both with the results of each committed instruction (the fault injector may
perturb one side), and compares the fingerprints when an interval completes.
A mismatch is *detection*: the pair squashes, resynchronises through the
serial request path, and re-executes -- modelled as a fixed recovery penalty.

A key property the paper relies on (Section 3.5) is that Reunion lets *any*
core act as vocal or mute for any other core, which is what makes MMM-TP's
dynamic pairing practical; the pair object is therefore cheap to create and
discard as the hardware scheduler re-forms pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.common.stats import StatSet
from repro.config.system import ReunionConfig
from repro.dmr.fingerprint_network import FingerprintNetwork
from repro.errors import SchedulingError
from repro.isa.fingerprints import FingerprintUnit
from repro.isa.instructions import Instruction


@dataclass(frozen=True)
class CheckOutcome:
    """Result of comparing one pair of fingerprints."""

    matched: bool
    penalty_cycles: int
    interval_instructions: int


class ReunionPair:
    """A vocal/mute pair redundantly executing one VCPU."""

    def __init__(
        self,
        vocal_core_id: int,
        mute_core_id: int,
        config: ReunionConfig,
        network: FingerprintNetwork,
    ) -> None:
        if vocal_core_id == mute_core_id:
            raise SchedulingError("a DMR pair needs two distinct cores")
        self.vocal_core_id = vocal_core_id
        self.mute_core_id = mute_core_id
        self.config = config
        self.network = network
        self.vocal_unit = FingerprintUnit(interval=config.fingerprint_interval)
        self.mute_unit = FingerprintUnit(interval=config.fingerprint_interval)
        self.stats = StatSet()

    def observe_commit(
        self,
        instruction: Instruction,
        vocal_corrupted: bool = False,
        mute_corrupted: bool = False,
    ) -> Optional[CheckOutcome]:
        """Feed one committed instruction into both fingerprint units.

        ``vocal_corrupted`` / ``mute_corrupted`` model a hardware fault that
        changed that core's architectural result for this instruction.  When
        the fingerprint interval completes, the fingerprints are compared and
        a :class:`CheckOutcome` is returned (``None`` mid-interval).
        """
        mute_view = instruction
        if vocal_corrupted or mute_corrupted:
            # Perturb the affected side's result so the fingerprints diverge.
            mute_view = Instruction(
                seq=instruction.seq,
                iclass=instruction.iclass,
                privilege=instruction.privilege,
                address=instruction.address,
                result=instruction.result ^ (0x1 if mute_corrupted else 0x0),
                is_shared=instruction.is_shared,
            )
            vocal_view = Instruction(
                seq=instruction.seq,
                iclass=instruction.iclass,
                privilege=instruction.privilege,
                address=instruction.address,
                result=instruction.result ^ (0x2 if vocal_corrupted else 0x0),
                is_shared=instruction.is_shared,
            )
        else:
            vocal_view = instruction

        vocal_fp = self.vocal_unit.observe(vocal_view)
        mute_fp = self.mute_unit.observe(mute_view)
        if vocal_fp is None and mute_fp is None:
            return None
        # Both units share the same interval, so they emit together.
        if vocal_fp is None or mute_fp is None:
            # Defensive: force the lagging unit to emit so the pair stays in
            # lock step (can only happen if a caller mixed streams).
            vocal_fp = vocal_fp or self.vocal_unit.flush()
            mute_fp = mute_fp or self.mute_unit.flush()
        return self._compare(vocal_fp, mute_fp)

    def observe_commit_token(
        self, seq: int, vocal_token: int, mute_token: int
    ) -> Optional[CheckOutcome]:
        """Feed one committed instruction as precomputed fingerprint tokens.

        The timing model's hot loop computes the vocal/mute tokens inline
        (via :func:`repro.isa.fingerprints.instruction_token`; the tokens
        differ only when the fault injector corrupted one side) and avoids
        the per-instruction :class:`Instruction` allocation that
        :meth:`observe_commit` requires.  Unit state, comparisons and
        statistics evolve exactly as with :meth:`observe_commit`.
        """
        vocal_unit = self.vocal_unit
        mute_unit = self.mute_unit
        if vocal_unit._first_seq is None:
            vocal_unit._first_seq = seq
        vocal_unit._last_seq = seq
        pending = vocal_unit._pending
        pending.append(vocal_token)
        if mute_unit._first_seq is None:
            mute_unit._first_seq = seq
        mute_unit._last_seq = seq
        mute_unit._pending.append(mute_token)
        if len(pending) >= vocal_unit.interval:
            return self._compare(vocal_unit.flush(), mute_unit.flush())
        return None

    def synchronize(self) -> Optional[CheckOutcome]:
        """Force a fingerprint comparison for any partial interval.

        Used before serialising instructions and at mode-switch boundaries,
        where the pair must agree on architected state before proceeding.
        """
        vocal_fp = self.vocal_unit.flush()
        mute_fp = self.mute_unit.flush()
        if vocal_fp is None and mute_fp is None:
            return None
        if vocal_fp is None or mute_fp is None:
            self.stats.add("unbalanced_synchronisations")
            return CheckOutcome(
                matched=False,
                penalty_cycles=self.config.recovery_penalty_cycles,
                interval_instructions=(vocal_fp or mute_fp).count,
            )
        return self._compare(vocal_fp, mute_fp)

    def _compare(self, vocal_fp, mute_fp) -> CheckOutcome:
        self.network.exchange_latency()
        matched = vocal_fp.value == mute_fp.value
        self.stats.add("comparisons")
        if matched:
            return CheckOutcome(
                matched=True, penalty_cycles=0, interval_instructions=vocal_fp.count
            )
        self.stats.add("mismatches")
        return CheckOutcome(
            matched=False,
            penalty_cycles=self.config.recovery_penalty_cycles,
            interval_instructions=vocal_fp.count,
        )

    @property
    def cores(self) -> tuple[int, int]:
        """``(vocal, mute)`` core identifiers."""
        return (self.vocal_core_id, self.mute_core_id)

    def mismatch_count(self) -> int:
        """Number of fingerprint mismatches detected so far."""
        return int(self.stats.get("mismatches"))
