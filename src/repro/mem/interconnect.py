"""On-chip interconnect and off-chip bandwidth model.

Latency model: the paper's target uses a point-to-point interconnect with an
average 10-cycle hop.  An L3 (2-hop) access pays the L3 latency; a dirty
cache-to-cache transfer is a 3-hop operation and therefore pays additional
hop latency -- the paper identifies exactly this extra latency as one of
Reunion's three overhead sources.

Bandwidth model: off-chip traffic (memory fills and writebacks) is
accumulated over a *window* (one scheduling quantum).  When the demand within
the window exceeds what the configured 40 GB/s link could deliver, subsequent
memory accesses in the window are stretched by the utilisation ratio.  This
coarse queueing model is what makes 16 active VCPUs observe lower per-thread
IPC than 8 (the paper's ``No DMR`` vs ``No DMR 2X`` gap) beyond L3 capacity
effects alone.
"""

from __future__ import annotations

from repro.common.stats import StatSet
from repro.config.system import InterconnectConfig, MemoryConfig


class Interconnect:
    """Latency and bandwidth bookkeeping for the on-chip fabric and DRAM link."""

    def __init__(
        self, config: InterconnectConfig, memory_config: MemoryConfig, line_bytes: int = 64
    ) -> None:
        self.config = config
        self.memory_config = memory_config
        self.line_bytes = line_bytes
        self.stats = StatSet()
        # Hot-path binding: record_offchip_transfer runs once per off-chip
        # access and bumps the counter dict directly.
        self._counts = self.stats.counters
        # A generous default window so that users who never call
        # ``begin_window`` (unit tests, ad-hoc experiments) do not observe
        # spurious bandwidth saturation.
        self._window_cycles = 10_000
        self._window_offchip_bytes = 0
        self._window_capacity = memory_config.bytes_per_cycle() * self._window_cycles

    # ------------------------------------------------------------------ #
    # Latency components
    # ------------------------------------------------------------------ #

    @property
    def hop_latency(self) -> int:
        """Average latency of one interconnect hop."""
        return self.config.hop_latency

    def l3_access_latency(self, l3_hit_latency: int) -> int:
        """Latency of a 2-hop shared-L3 access (the L3 latency already
        includes the average round trip in the paper's configuration)."""
        return l3_hit_latency

    def cache_to_cache_latency(self, l3_hit_latency: int, l2_hit_latency: int) -> int:
        """Latency of a 3-hop dirty cache-to-cache transfer.

        Requester -> directory (co-located with the L3 banks) -> owner's L2 ->
        requester.  This is strictly more expensive than a 2-hop L3 hit.
        """
        extra_hop = self.config.hop_latency * (self.config.cache_to_cache_hops - 2)
        return l3_hit_latency + extra_hop + l2_hit_latency

    def invalidation_latency(self, num_targets: int) -> int:
        """Latency to invalidate ``num_targets`` remote sharers (overlapped)."""
        if num_targets <= 0:
            return 0
        return self.config.hop_latency * 2

    @property
    def fingerprint_latency(self) -> int:
        """Latency of the dedicated fingerprint network."""
        return self.config.fingerprint_latency

    # ------------------------------------------------------------------ #
    # Off-chip bandwidth window
    # ------------------------------------------------------------------ #

    def begin_window(self, window_cycles: int) -> None:
        """Start a new bandwidth accounting window of ``window_cycles`` cycles."""
        self._window_cycles = max(1, window_cycles)
        self._window_offchip_bytes = 0
        self._window_capacity = self.memory_config.bytes_per_cycle() * self._window_cycles

    def record_offchip_transfer(self, bytes_moved: int | None = None) -> None:
        """Account one off-chip transfer (defaults to one cache line)."""
        moved = self.line_bytes if bytes_moved is None else bytes_moved
        self._window_offchip_bytes += moved
        counts = self._counts
        counts["offchip_bytes"] += moved

    def offchip_contention_factor(self) -> float:
        """Multiplier applied to memory latency under bandwidth saturation.

        The factor is 1.0 while demand stays below the link capacity for the
        current window and grows linearly with over-subscription beyond it.
        """
        capacity = self._window_capacity
        if capacity <= 0:
            return 1.0
        utilization = self._window_offchip_bytes / capacity
        if utilization <= 1.0:
            return 1.0
        return min(4.0, utilization)

    @property
    def window_offchip_bytes(self) -> int:
        """Bytes moved off-chip in the current window."""
        return self._window_offchip_bytes
