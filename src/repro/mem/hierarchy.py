"""The three-level cache hierarchy of the target multicore.

Structure (Section 4.1 of the paper):

* per-core split write-through L1 I/D caches,
* per-core private L2,
* one shared L3 that maintains **exclusion** with the private L2s (like the
  IBM Power5 / AMD quad-core Opteron): a line lives either in some core's L2
  or in the L3, not both,
* a MOSI directory (shadow tags co-located with the L3) over a point-to-point
  interconnect,
* flat DRAM behind a bandwidth-limited off-chip link.

Two access paths are provided:

``coherent=True``
    Normal requests (non-DMR cores and Reunion vocal cores).  These update
    directory state, invalidate remote sharers on stores, and move lines
    between the L2s and the exclusive L3.

``coherent=False``
    Reunion *mute* requests.  They are best-effort: they may read data from
    the owner's L2 (a 3-hop cache-to-cache transfer) or from the L3/DRAM, but
    they never change the directory, never invalidate anybody, and every line
    they bring into the mute's private hierarchy is marked incoherent so it
    can never be written back.

The class also implements the line-by-line L2 flush used when an MMM-TP pair
leaves DMR mode (Section 3.4.3): each frame of the L2 is inspected at one
line per cycle, coherent dirty lines are written back to the L3, and
incoherent lines are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.stats import StatSet
from repro.config.system import SystemConfig
from repro.errors import MemorySystemError
from repro.mem.cache import SetAssociativeCache
from repro.mem.directory import Directory
from repro.mem.dram import MainMemory
from repro.mem.interconnect import Interconnect
from repro.mem.lines import LineState


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data access through the hierarchy."""

    latency: int
    level: str
    c2c: bool = False
    offchip: bool = False
    invalidations: int = 0


@dataclass(slots=True)
class FlushResult:
    """Outcome of flushing one core's private L2."""

    cycles: int
    lines_inspected: int
    dirty_writebacks: int
    incoherent_dropped: int


class MemoryHierarchy:
    """The shared memory system used by every core of the simulated chip."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.num_cores = config.num_cores
        self.line_bytes = config.l2.line_bytes
        self.l1d: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1d) for _ in range(self.num_cores)
        ]
        self.l1i: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1i) for _ in range(self.num_cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l2) for _ in range(self.num_cores)
        ]
        self.l3 = SetAssociativeCache(config.l3)
        self.directory = Directory(line_bytes=self.line_bytes)
        self.interconnect = Interconnect(
            config.interconnect, config.memory, line_bytes=self.line_bytes
        )
        self.memory = MainMemory(config.memory)
        self.stats = StatSet()
        # Hot-path binding: the access paths below bump counters directly
        # rather than calling StatSet.add once or more per data access.
        self._counts = self.stats.counters
        # Per-access constants hoisted out of the access paths: the line size
        # is a validated power of two, and the config is immutable.
        self._line_neg_mask = -self.line_bytes
        # The directory's entry map is created once and only ever mutated in
        # place, so the miss paths can consult it directly (addresses reaching
        # them are already line-aligned, making peek()'s alignment a no-op).
        self._dir_entries = self.directory._entries
        self._l1d_hit_latency = config.l1d.hit_latency
        self._l2_hit_latency = config.l2.hit_latency
        self._l3_hit_latency = config.l3.hit_latency
        # Interconnect latencies are pure functions of the immutable config;
        # the miss paths use the precomputed values.
        self._c2c_latency = self.interconnect.cache_to_cache_latency(
            self._l3_hit_latency, self._l2_hit_latency
        )
        self._inv_latency = self.interconnect.invalidation_latency(1)

    # ------------------------------------------------------------------ #
    # Window management (bandwidth accounting)
    # ------------------------------------------------------------------ #

    def begin_window(self, window_cycles: int) -> None:
        """Open a new bandwidth accounting window (one scheduling quantum)."""
        self.interconnect.begin_window(window_cycles)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise MemorySystemError(
                f"core {core_id} outside the configured {self.num_cores}-core chip"
            )

    def _line(self, address: int) -> int:
        return address & self._line_neg_mask

    def _victimise_l2_line(self, core_id: int, victim) -> None:
        """Handle an L2 eviction: victim goes to the exclusive L3 if coherent."""
        counts = self._counts
        self.directory.record_eviction(victim.line_addr, core_id)
        if not victim.coherent:
            counts["l2.incoherent_victims_dropped"] += 1
            return
        l3_victim = self.l3.insert(
            victim.line_addr,
            state=victim.state if victim.state is not LineState.INVALID else LineState.SHARED,
            dirty=victim.dirty,
            coherent=True,
        )
        counts["l2.victims_to_l3"] += 1
        if l3_victim is not None and l3_victim.needs_writeback:
            self.interconnect.record_offchip_transfer()
            self.memory.writeback_latency(self.interconnect.offchip_contention_factor())
            counts["l3.writebacks"] += 1

    def _fill_l2(
        self, core_id: int, line_addr: int, state: LineState, dirty: bool, coherent: bool
    ) -> None:
        victim = self.l2[core_id].insert(line_addr, state, dirty, coherent)
        if victim is not None:
            # Keep the L1 consistent with the L2 (inclusive L1/L2 assumption).
            self.l1d[core_id].invalidate(victim.line_addr)
            self.l1i[core_id].invalidate(victim.line_addr)
            self._victimise_l2_line(core_id, victim)

    def _fill_l1(self, core_id: int, line_addr: int, coherent: bool) -> None:
        # The write-through L1 never holds dirty data, so victims are dropped
        # (and their line objects recycled by the specialised fill).
        self.l1d[core_id].fill_shared(line_addr, coherent)

    def _invalidate_remote_copies(self, line_addr: int, cores: set[int]) -> None:
        counts = self._counts
        for other in cores:
            self.l1d[other].invalidate(line_addr)
            self.l1i[other].invalidate(line_addr)
            self.l2[other].invalidate(line_addr)
            counts["remote_invalidations"] += 1

    # ------------------------------------------------------------------ #
    # Coherent access path (normal and vocal cores)
    # ------------------------------------------------------------------ #

    def _remote_holder(self, line_addr: int, requester: int) -> Optional[int]:
        """Find a remote private L2 currently holding the line.

        The directory's shadow tags know both the owner (M/O) and the sharers
        of a line; because the L3 is exclusive with the L2s, a line held only
        by sharers is *not* in the L3 and must be forwarded from one of them
        (a clean cache-to-cache transfer).  The owner is preferred when there
        is one (dirty cache-to-cache transfer).
        """
        entry = self._dir_entries.get(line_addr)
        if entry is None:
            return None
        owner = entry.owner
        if owner is not None and owner != requester and line_addr in self.l2[owner]._lines:
            return owner
        for sharer in sorted(entry.sharers):
            if sharer != requester and line_addr in self.l2[sharer]._lines:
                return sharer
        return None

    def _coherent_miss_fill(self, core_id: int, line_addr: int, is_store: bool):
        """Serve an L2 miss coherently from a remote L2, the L3, or memory.

        Returns ``(latency, level, c2c, offchip, invalidations)``; the public
        :meth:`access` wraps the tuple into an :class:`AccessResult`.
        """
        counts = self._counts
        l3_latency = self._l3_hit_latency
        owner = self._remote_holder(line_addr, core_id)
        invalidations = 0

        if owner is not None:
            # 3-hop dirty cache-to-cache transfer from the owning L2.
            latency = self._c2c_latency
            counts["c2c_transfers"] += 1
            if is_store:
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                invalidations = len(targets)
                if invalidations:
                    latency += self._inv_latency
                self._invalidate_remote_copies(line_addr, targets)
                self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
            else:
                self.directory.record_downgrade(line_addr, owner)
                self.directory.record_shared_fetch(line_addr, core_id)
                self._fill_l2(core_id, line_addr, LineState.SHARED, dirty=False, coherent=True)
            self.l1d[core_id].fill_shared(line_addr, True)
            return (latency, "c2c", True, False, invalidations)

        l3_line = self.l3.touch(line_addr)
        if l3_line is not None:
            # Exclusive L3: the line moves from the L3 into the requester's L2.
            latency = l3_latency
            dirty = l3_line.dirty
            self.l3.invalidate(line_addr)
            counts["l3.hits"] += 1
            if is_store:
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                invalidations = len(targets)
                if invalidations:
                    latency += self._inv_latency
                self._invalidate_remote_copies(line_addr, targets)
                self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
            else:
                self.directory.record_shared_fetch(line_addr, core_id)
                state = LineState.OWNED if dirty else LineState.SHARED
                self._fill_l2(core_id, line_addr, state, dirty=dirty, coherent=True)
            self.l1d[core_id].fill_shared(line_addr, True)
            return (latency, "l3", False, False, invalidations)

        # Off-chip access.
        counts["l3.misses"] += 1
        self.interconnect.record_offchip_transfer()
        latency = l3_latency + self.memory.access_latency(
            self.interconnect.offchip_contention_factor()
        )
        if is_store:
            targets = self.directory.record_exclusive_fetch(line_addr, core_id)
            invalidations = len(targets)
            if invalidations:
                latency += self._inv_latency
            self._invalidate_remote_copies(line_addr, targets)
            self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
        else:
            self.directory.record_shared_fetch(line_addr, core_id)
            self._fill_l2(core_id, line_addr, LineState.SHARED, dirty=False, coherent=True)
        self.l1d[core_id].fill_shared(line_addr, True)
        return (latency, "memory", False, True, invalidations)

    def _coherent_load(self, core_id: int, address: int):
        # The L1/L2 hit checks inline SetAssociativeCache.touch (flat-map get
        # plus LRU stamp plus hit/miss counters) -- this is the single most
        # frequent operation in the whole simulator, and the method call per
        # level is measurable.  Statistics evolve exactly as through touch().
        line_addr = address & self._line_neg_mask
        counts = self._counts
        l1 = self.l1d[core_id]
        line = l1._lines.get(line_addr)
        if line is not None:
            l1._touch_counter = counter = l1._touch_counter + 1
            line.last_touch = counter
            l1._counts["hits"] += 1
            counts["l1d.hits"] += 1
            return (self._l1d_hit_latency, "l1", False, False, 0)
        l1._counts["misses"] += 1
        counts["l1d.misses"] += 1
        l2 = self.l2[core_id]
        l2_line = l2._lines.get(line_addr)
        if l2_line is not None:
            l2._touch_counter = counter = l2._touch_counter + 1
            l2_line.last_touch = counter
            l2._counts["hits"] += 1
            l1.fill_shared(line_addr, l2_line.coherent)
            counts["l2.hits"] += 1
            return (self._l2_hit_latency, "l2", False, False, 0)
        l2._counts["misses"] += 1
        counts["l2.misses"] += 1
        return self._coherent_miss_fill(core_id, line_addr, is_store=False)

    def _coherent_store(self, core_id: int, address: int):
        line_addr = address & self._line_neg_mask
        counts = self._counts
        # The write-through L1 forwards every store to the L2; the L1 copy (if
        # any) is simply kept up to date at no extra cost.  The L2 hit check
        # inlines touch() like the load path above.
        l2 = self.l2[core_id]
        l2_line = l2._lines.get(line_addr)
        if l2_line is not None:
            l2._touch_counter = counter = l2._touch_counter + 1
            l2_line.last_touch = counter
            l2._counts["hits"] += 1
            counts["l2.hits"] += 1
            latency = self._l2_hit_latency
            invalidations = 0
            if l2_line.state in (LineState.SHARED, LineState.OWNED):
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                targets.discard(core_id)
                invalidations = len(targets)
                if invalidations:
                    latency += self._inv_latency
                self._invalidate_remote_copies(line_addr, targets)
            l2_line.state = LineState.MODIFIED
            l2_line.dirty = True
            dir_entry = self._dir_entries.get(line_addr)
            if (dir_entry.owner if dir_entry is not None else None) != core_id:
                self.directory.record_exclusive_fetch(line_addr, core_id)
            return (latency, "l2", False, False, invalidations)
        l2._counts["misses"] += 1
        counts["l2.misses"] += 1
        return self._coherent_miss_fill(core_id, line_addr, is_store=True)

    # ------------------------------------------------------------------ #
    # Incoherent (mute) access path
    # ------------------------------------------------------------------ #

    def _mute_access(self, core_id: int, address: int, is_store: bool):
        # L1/L2 hit checks inline touch(), as in the coherent paths.
        line_addr = address & self._line_neg_mask
        counts = self._counts
        l1 = self.l1d[core_id]
        l2 = self.l2[core_id]
        line = l1._lines.get(line_addr)
        if line is not None:
            l1._touch_counter = counter = l1._touch_counter + 1
            line.last_touch = counter
            l1._counts["hits"] += 1
            counts["mute.l1d.hits"] += 1
            if is_store:
                l2_line = l2._lines.get(line_addr)
                if l2_line is not None:
                    l2_line.dirty = True
                    l2_line.coherent = False
            return (self._l1d_hit_latency, "l1", False, False, 0)
        l1._counts["misses"] += 1
        l2_line = l2._lines.get(line_addr)
        if l2_line is not None:
            l2._touch_counter = counter = l2._touch_counter + 1
            l2_line.last_touch = counter
            l2._counts["hits"] += 1
            counts["mute.l2.hits"] += 1
            if is_store:
                l2_line.dirty = True
                l2_line.coherent = False
            return (self._l2_hit_latency, "l2", False, False, 0)
        l2._counts["misses"] += 1

        # Best-effort fill without changing global state.
        counts["mute.l2.misses"] += 1
        l3_latency = self._l3_hit_latency
        holder = self._remote_holder(line_addr, core_id)
        if holder is not None:
            latency = self._c2c_latency
            level = "c2c"
            c2c = True
            offchip = False
            counts["c2c_transfers"] += 1
            counts["mute.c2c_transfers"] += 1
        elif self.l3.lookup(line_addr) is not None:
            latency = l3_latency
            level = "l3"
            c2c = False
            offchip = False
            counts["mute.l3_hits"] += 1
        else:
            self.interconnect.record_offchip_transfer()
            latency = l3_latency + self.memory.access_latency(
                self.interconnect.offchip_contention_factor()
            )
            level = "memory"
            c2c = False
            offchip = True
            counts["mute.memory_accesses"] += 1
        self._fill_l2(
            core_id,
            line_addr,
            LineState.MODIFIED if is_store else LineState.SHARED,
            dirty=is_store,
            coherent=False,
        )
        l1.fill_shared(line_addr, False)
        return (latency, level, c2c, offchip, 0)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def access_raw(self, core_id: int, address: int, is_store: bool, coherent: bool = True):
        """Perform one data access without building an :class:`AccessResult`.

        Returns ``(latency, level, c2c, offchip, invalidations)``.  This is
        the form the core timing model's hot loop consumes; behaviour and
        statistics are identical to :meth:`access`.
        """
        self._check_core(core_id)
        if address < 0:
            raise MemorySystemError(f"negative physical address {address}")
        if coherent:
            if is_store:
                return self._coherent_store(core_id, address)
            return self._coherent_load(core_id, address)
        return self._mute_access(core_id, address, is_store)

    def access(
        self, core_id: int, address: int, is_store: bool, coherent: bool = True
    ) -> AccessResult:
        """Perform one data access and return its latency and classification."""
        latency, level, c2c, offchip, invalidations = self.access_raw(
            core_id, address, is_store, coherent
        )
        return AccessResult(
            latency=latency,
            level=level,
            c2c=c2c,
            offchip=offchip,
            invalidations=invalidations,
        )

    def warm(self, core_id: int, addresses, secondary_core: Optional[int] = None) -> int:
        """Functionally warm caches by touching ``addresses`` with loads.

        Each address is loaded coherently on ``core_id`` and, when a
        ``secondary_core`` is given (a DMR mute), incoherently on that core --
        exactly the access sequence the simulator's per-address warming loop
        used to issue, without the per-access wrapper overhead.  Returns the
        number of addresses touched.
        """
        self._check_core(core_id)
        if secondary_core is not None:
            self._check_core(secondary_core)
        coherent_load = self._coherent_load
        mute_access = self._mute_access
        # Re-warming after a VM switch mostly re-touches resident lines, so
        # the L1-hit path of _coherent_load (and of the mute load) is inlined
        # here; misses take the full access path.  Counters evolve exactly as
        # through the out-of-line calls.
        neg_mask = self._line_neg_mask
        counts = self._counts
        l1 = self.l1d[core_id]
        l1_lines = l1._lines
        l1_counts = l1._counts
        count = 0
        if secondary_core is None:
            for address in addresses:
                line = l1_lines.get(address & neg_mask)
                if line is not None:
                    l1._touch_counter = counter = l1._touch_counter + 1
                    line.last_touch = counter
                    l1_counts["hits"] += 1
                    counts["l1d.hits"] += 1
                else:
                    coherent_load(core_id, address)
                count += 1
            return count
        m_l1 = self.l1d[secondary_core]
        m_lines = m_l1._lines
        m_counts = m_l1._counts
        for address in addresses:
            line = l1_lines.get(address & neg_mask)
            if line is not None:
                l1._touch_counter = counter = l1._touch_counter + 1
                line.last_touch = counter
                l1_counts["hits"] += 1
                counts["l1d.hits"] += 1
            else:
                coherent_load(core_id, address)
            m_line = m_lines.get(address & neg_mask)
            if m_line is not None:
                m_l1._touch_counter = counter = m_l1._touch_counter + 1
                m_line.last_touch = counter
                m_counts["hits"] += 1
                counts["mute.l1d.hits"] += 1
            else:
                mute_access(secondary_core, address, False)
            count += 1
        return count

    def load(self, core_id: int, address: int, coherent: bool = True) -> AccessResult:
        """Convenience wrapper for a load access."""
        return self.access(core_id, address, is_store=False, coherent=coherent)

    def store(self, core_id: int, address: int, coherent: bool = True) -> AccessResult:
        """Convenience wrapper for a store access."""
        return self.access(core_id, address, is_store=True, coherent=coherent)

    def flush_l2(self, core_id: int) -> FlushResult:
        """Flush one core's private L2 (and L1s) line by line.

        Used when an MMM-TP pair leaves DMR mode: the mute core's cache can
        contain a mixture of incoherent lines (from Reunion's best-effort
        path) and coherent lines (VCPU state moved during mode switches), so
        every frame must be inspected.  The paper pessimistically assumes one
        line inspected or written back per cycle, which is what makes Leave
        DMR roughly 8 k cycles more expensive than Enter DMR on the 512 KB L2.
        """
        self._check_core(core_id)
        l2 = self.l2[core_id]
        resident = l2.resident_lines()
        dirty_writebacks = 0
        incoherent_dropped = 0
        for line in resident:
            if line.needs_writeback:
                dirty_writebacks += 1
                l3_victim = self.l3.insert(
                    line.line_addr, state=LineState.OWNED, dirty=True, coherent=True
                )
                if l3_victim is not None and l3_victim.needs_writeback:
                    self.interconnect.record_offchip_transfer()
                    self.stats.add("l3.writebacks")
            elif not line.coherent:
                incoherent_dropped += 1
            self.directory.record_eviction(line.line_addr, core_id)
        l2.clear()
        self.l1d[core_id].clear()
        self.l1i[core_id].clear()
        # One cycle per frame inspected plus one per line written back.
        cycles = l2.capacity_lines + dirty_writebacks
        self.stats.add("l2.flushes")
        self.stats.add("l2.flush_cycles", cycles)
        return FlushResult(
            cycles=cycles,
            lines_inspected=l2.capacity_lines,
            dirty_writebacks=dirty_writebacks,
            incoherent_dropped=incoherent_dropped,
        )

    def invalidate_incoherent_lines(self, core_id: int) -> int:
        """Drop every incoherent line from a core's private caches.

        Cheaper than a full flush; used when a mute core is re-purposed
        without having observed any coherent state.
        """
        self._check_core(core_id)
        dropped = 0
        for cache in (self.l1d[core_id], self.l1i[core_id], self.l2[core_id]):
            for line in cache.resident_lines():
                if not line.coherent:
                    cache.invalidate(line.line_addr)
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def l2_for(self, core_id: int) -> SetAssociativeCache:
        """The private L2 of ``core_id``."""
        self._check_core(core_id)
        return self.l2[core_id]

    def l1d_for(self, core_id: int) -> SetAssociativeCache:
        """The private L1 data cache of ``core_id``."""
        self._check_core(core_id)
        return self.l1d[core_id]

    def c2c_transfer_count(self) -> int:
        """Total dirty cache-to-cache transfers observed so far."""
        return int(self.stats.get("c2c_transfers"))

    def merged_stats(self) -> StatSet:
        """Hierarchy-wide statistics including interconnect and DRAM counters."""
        merged = StatSet(self.stats.as_dict())
        merged.merge(self.interconnect.stats)
        merged.merge(self.memory.stats)
        return merged
