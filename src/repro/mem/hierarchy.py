"""The three-level cache hierarchy of the target multicore.

Structure (Section 4.1 of the paper):

* per-core split write-through L1 I/D caches,
* per-core private L2,
* one shared L3 that maintains **exclusion** with the private L2s (like the
  IBM Power5 / AMD quad-core Opteron): a line lives either in some core's L2
  or in the L3, not both,
* a MOSI directory (shadow tags co-located with the L3) over a point-to-point
  interconnect,
* flat DRAM behind a bandwidth-limited off-chip link.

Two access paths are provided:

``coherent=True``
    Normal requests (non-DMR cores and Reunion vocal cores).  These update
    directory state, invalidate remote sharers on stores, and move lines
    between the L2s and the exclusive L3.

``coherent=False``
    Reunion *mute* requests.  They are best-effort: they may read data from
    the owner's L2 (a 3-hop cache-to-cache transfer) or from the L3/DRAM, but
    they never change the directory, never invalidate anybody, and every line
    they bring into the mute's private hierarchy is marked incoherent so it
    can never be written back.

The class also implements the line-by-line L2 flush used when an MMM-TP pair
leaves DMR mode (Section 3.4.3): each frame of the L2 is inspected at one
line per cycle, coherent dirty lines are written back to the L3, and
incoherent lines are discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.stats import StatSet
from repro.config.system import SystemConfig
from repro.errors import MemorySystemError
from repro.mem.cache import SetAssociativeCache
from repro.mem.directory import Directory
from repro.mem.dram import MainMemory
from repro.mem.interconnect import Interconnect
from repro.mem.lines import LineState


@dataclass(slots=True)
class AccessResult:
    """Outcome of one data access through the hierarchy."""

    latency: int
    level: str
    c2c: bool = False
    offchip: bool = False
    invalidations: int = 0


@dataclass(slots=True)
class FlushResult:
    """Outcome of flushing one core's private L2."""

    cycles: int
    lines_inspected: int
    dirty_writebacks: int
    incoherent_dropped: int


class MemoryHierarchy:
    """The shared memory system used by every core of the simulated chip."""

    def __init__(self, config: SystemConfig) -> None:
        config.validate()
        self.config = config
        self.num_cores = config.num_cores
        self.line_bytes = config.l2.line_bytes
        self.l1d: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1d) for _ in range(self.num_cores)
        ]
        self.l1i: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l1i) for _ in range(self.num_cores)
        ]
        self.l2: List[SetAssociativeCache] = [
            SetAssociativeCache(config.l2) for _ in range(self.num_cores)
        ]
        self.l3 = SetAssociativeCache(config.l3)
        self.directory = Directory(line_bytes=self.line_bytes)
        self.interconnect = Interconnect(
            config.interconnect, config.memory, line_bytes=self.line_bytes
        )
        self.memory = MainMemory(config.memory)
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # Window management (bandwidth accounting)
    # ------------------------------------------------------------------ #

    def begin_window(self, window_cycles: int) -> None:
        """Open a new bandwidth accounting window (one scheduling quantum)."""
        self.interconnect.begin_window(window_cycles)

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #

    def _check_core(self, core_id: int) -> None:
        if not 0 <= core_id < self.num_cores:
            raise MemorySystemError(
                f"core {core_id} outside the configured {self.num_cores}-core chip"
            )

    def _line(self, address: int) -> int:
        return address - (address % self.line_bytes)

    def _victimise_l2_line(self, core_id: int, victim) -> None:
        """Handle an L2 eviction: victim goes to the exclusive L3 if coherent."""
        self.directory.record_eviction(victim.line_addr, core_id)
        if not victim.coherent:
            self.stats.add("l2.incoherent_victims_dropped")
            return
        l3_victim = self.l3.insert(
            victim.line_addr,
            state=victim.state if victim.state is not LineState.INVALID else LineState.SHARED,
            dirty=victim.dirty,
            coherent=True,
        )
        self.stats.add("l2.victims_to_l3")
        if l3_victim is not None and l3_victim.needs_writeback:
            self.interconnect.record_offchip_transfer()
            self.memory.writeback_latency(self.interconnect.offchip_contention_factor())
            self.stats.add("l3.writebacks")

    def _fill_l2(
        self, core_id: int, line_addr: int, state: LineState, dirty: bool, coherent: bool
    ) -> None:
        victim = self.l2[core_id].insert(line_addr, state=state, dirty=dirty, coherent=coherent)
        if victim is not None:
            # Keep the L1 consistent with the L2 (inclusive L1/L2 assumption).
            self.l1d[core_id].invalidate(victim.line_addr)
            self.l1i[core_id].invalidate(victim.line_addr)
            self._victimise_l2_line(core_id, victim)

    def _fill_l1(self, core_id: int, line_addr: int, coherent: bool) -> None:
        # The write-through L1 never holds dirty data, so victims are dropped.
        self.l1d[core_id].insert(line_addr, state=LineState.SHARED, dirty=False, coherent=coherent)

    def _invalidate_remote_copies(self, line_addr: int, cores: set[int]) -> None:
        for other in cores:
            self.l1d[other].invalidate(line_addr)
            self.l1i[other].invalidate(line_addr)
            self.l2[other].invalidate(line_addr)
            self.stats.add("remote_invalidations")

    # ------------------------------------------------------------------ #
    # Coherent access path (normal and vocal cores)
    # ------------------------------------------------------------------ #

    def _remote_holder(self, line_addr: int, requester: int) -> Optional[int]:
        """Find a remote private L2 currently holding the line.

        The directory's shadow tags know both the owner (M/O) and the sharers
        of a line; because the L3 is exclusive with the L2s, a line held only
        by sharers is *not* in the L3 and must be forwarded from one of them
        (a clean cache-to-cache transfer).  The owner is preferred when there
        is one (dirty cache-to-cache transfer).
        """
        entry = self.directory.peek(line_addr)
        if entry is None:
            return None
        owner = entry.owner
        if owner is not None and owner != requester and self.l2[owner].contains(line_addr):
            return owner
        for sharer in sorted(entry.sharers):
            if sharer != requester and self.l2[sharer].contains(line_addr):
                return sharer
        return None

    def _coherent_miss_fill(
        self, core_id: int, line_addr: int, is_store: bool
    ) -> AccessResult:
        """Serve an L2 miss coherently from a remote L2, the L3, or memory."""
        l2_latency = self.config.l2.hit_latency
        l3_latency = self.config.l3.hit_latency
        owner = self._remote_holder(line_addr, core_id)
        invalidations = 0

        if owner is not None:
            # 3-hop dirty cache-to-cache transfer from the owning L2.
            latency = self.interconnect.cache_to_cache_latency(l3_latency, l2_latency)
            self.stats.add("c2c_transfers")
            if is_store:
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                invalidations = len(targets)
                latency += self.interconnect.invalidation_latency(invalidations)
                self._invalidate_remote_copies(line_addr, targets)
                self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
            else:
                self.directory.record_downgrade(line_addr, owner)
                self.directory.record_shared_fetch(line_addr, core_id)
                self._fill_l2(core_id, line_addr, LineState.SHARED, dirty=False, coherent=True)
            self._fill_l1(core_id, line_addr, coherent=True)
            return AccessResult(latency=latency, level="c2c", c2c=True, invalidations=invalidations)

        l3_line = self.l3.touch(line_addr)
        if l3_line is not None:
            # Exclusive L3: the line moves from the L3 into the requester's L2.
            latency = self.interconnect.l3_access_latency(l3_latency)
            dirty = l3_line.dirty
            self.l3.invalidate(line_addr)
            self.stats.add("l3.hits")
            if is_store:
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                invalidations = len(targets)
                latency += self.interconnect.invalidation_latency(invalidations)
                self._invalidate_remote_copies(line_addr, targets)
                self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
            else:
                self.directory.record_shared_fetch(line_addr, core_id)
                state = LineState.OWNED if dirty else LineState.SHARED
                self._fill_l2(core_id, line_addr, state, dirty=dirty, coherent=True)
            self._fill_l1(core_id, line_addr, coherent=True)
            return AccessResult(latency=latency, level="l3", invalidations=invalidations)

        # Off-chip access.
        self.stats.add("l3.misses")
        self.interconnect.record_offchip_transfer()
        latency = l3_latency + self.memory.access_latency(
            self.interconnect.offchip_contention_factor()
        )
        if is_store:
            targets = self.directory.record_exclusive_fetch(line_addr, core_id)
            invalidations = len(targets)
            latency += self.interconnect.invalidation_latency(invalidations)
            self._invalidate_remote_copies(line_addr, targets)
            self._fill_l2(core_id, line_addr, LineState.MODIFIED, dirty=True, coherent=True)
        else:
            self.directory.record_shared_fetch(line_addr, core_id)
            self._fill_l2(core_id, line_addr, LineState.SHARED, dirty=False, coherent=True)
        self._fill_l1(core_id, line_addr, coherent=True)
        return AccessResult(
            latency=latency, level="memory", offchip=True, invalidations=invalidations
        )

    def _coherent_load(self, core_id: int, address: int) -> AccessResult:
        line_addr = self._line(address)
        if self.l1d[core_id].touch(line_addr) is not None:
            self.stats.add("l1d.hits")
            return AccessResult(latency=self.config.l1d.hit_latency, level="l1")
        self.stats.add("l1d.misses")
        l2_line = self.l2[core_id].touch(line_addr)
        if l2_line is not None:
            self._fill_l1(core_id, line_addr, coherent=l2_line.coherent)
            self.stats.add("l2.hits")
            return AccessResult(latency=self.config.l2.hit_latency, level="l2")
        self.stats.add("l2.misses")
        return self._coherent_miss_fill(core_id, line_addr, is_store=False)

    def _coherent_store(self, core_id: int, address: int) -> AccessResult:
        line_addr = self._line(address)
        # The write-through L1 forwards every store to the L2; the L1 copy (if
        # any) is simply kept up to date at no extra cost.
        l2_line = self.l2[core_id].touch(line_addr)
        if l2_line is not None:
            self.stats.add("l2.hits")
            latency = self.config.l2.hit_latency
            invalidations = 0
            if l2_line.state in (LineState.SHARED, LineState.OWNED):
                targets = self.directory.record_exclusive_fetch(line_addr, core_id)
                targets.discard(core_id)
                invalidations = len(targets)
                latency += self.interconnect.invalidation_latency(invalidations)
                self._invalidate_remote_copies(line_addr, targets)
            l2_line.state = LineState.MODIFIED
            l2_line.dirty = True
            if self.directory.owner_of(line_addr) != core_id:
                self.directory.record_exclusive_fetch(line_addr, core_id)
            return AccessResult(latency=latency, level="l2", invalidations=invalidations)
        self.stats.add("l2.misses")
        return self._coherent_miss_fill(core_id, line_addr, is_store=True)

    # ------------------------------------------------------------------ #
    # Incoherent (mute) access path
    # ------------------------------------------------------------------ #

    def _mute_access(self, core_id: int, address: int, is_store: bool) -> AccessResult:
        line_addr = self._line(address)
        if self.l1d[core_id].touch(line_addr) is not None:
            self.stats.add("mute.l1d.hits")
            if is_store:
                l2_line = self.l2[core_id].lookup(line_addr)
                if l2_line is not None:
                    l2_line.dirty = True
                    l2_line.coherent = False
            return AccessResult(latency=self.config.l1d.hit_latency, level="l1")
        l2_line = self.l2[core_id].touch(line_addr)
        if l2_line is not None:
            self.stats.add("mute.l2.hits")
            if is_store:
                l2_line.dirty = True
                l2_line.coherent = False
            return AccessResult(latency=self.config.l2.hit_latency, level="l2")

        # Best-effort fill without changing global state.
        self.stats.add("mute.l2.misses")
        l2_latency = self.config.l2.hit_latency
        l3_latency = self.config.l3.hit_latency
        holder = self._remote_holder(line_addr, core_id)
        if holder is not None:
            latency = self.interconnect.cache_to_cache_latency(l3_latency, l2_latency)
            level = "c2c"
            c2c = True
            offchip = False
            self.stats.add("c2c_transfers")
            self.stats.add("mute.c2c_transfers")
        elif self.l3.lookup(line_addr) is not None:
            latency = self.interconnect.l3_access_latency(l3_latency)
            level = "l3"
            c2c = False
            offchip = False
            self.stats.add("mute.l3_hits")
        else:
            self.interconnect.record_offchip_transfer()
            latency = l3_latency + self.memory.access_latency(
                self.interconnect.offchip_contention_factor()
            )
            level = "memory"
            c2c = False
            offchip = True
            self.stats.add("mute.memory_accesses")
        self._fill_l2(
            core_id,
            line_addr,
            LineState.MODIFIED if is_store else LineState.SHARED,
            dirty=is_store,
            coherent=False,
        )
        self._fill_l1(core_id, line_addr, coherent=False)
        return AccessResult(latency=latency, level=level, c2c=c2c, offchip=offchip)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def access(
        self, core_id: int, address: int, is_store: bool, coherent: bool = True
    ) -> AccessResult:
        """Perform one data access and return its latency and classification."""
        self._check_core(core_id)
        if address < 0:
            raise MemorySystemError(f"negative physical address {address}")
        if coherent:
            if is_store:
                return self._coherent_store(core_id, address)
            return self._coherent_load(core_id, address)
        return self._mute_access(core_id, address, is_store)

    def load(self, core_id: int, address: int, coherent: bool = True) -> AccessResult:
        """Convenience wrapper for a load access."""
        return self.access(core_id, address, is_store=False, coherent=coherent)

    def store(self, core_id: int, address: int, coherent: bool = True) -> AccessResult:
        """Convenience wrapper for a store access."""
        return self.access(core_id, address, is_store=True, coherent=coherent)

    def flush_l2(self, core_id: int) -> FlushResult:
        """Flush one core's private L2 (and L1s) line by line.

        Used when an MMM-TP pair leaves DMR mode: the mute core's cache can
        contain a mixture of incoherent lines (from Reunion's best-effort
        path) and coherent lines (VCPU state moved during mode switches), so
        every frame must be inspected.  The paper pessimistically assumes one
        line inspected or written back per cycle, which is what makes Leave
        DMR roughly 8 k cycles more expensive than Enter DMR on the 512 KB L2.
        """
        self._check_core(core_id)
        l2 = self.l2[core_id]
        resident = l2.resident_lines()
        dirty_writebacks = 0
        incoherent_dropped = 0
        for line in resident:
            if line.needs_writeback:
                dirty_writebacks += 1
                l3_victim = self.l3.insert(
                    line.line_addr, state=LineState.OWNED, dirty=True, coherent=True
                )
                if l3_victim is not None and l3_victim.needs_writeback:
                    self.interconnect.record_offchip_transfer()
                    self.stats.add("l3.writebacks")
            elif not line.coherent:
                incoherent_dropped += 1
            self.directory.record_eviction(line.line_addr, core_id)
        l2.clear()
        self.l1d[core_id].clear()
        self.l1i[core_id].clear()
        # One cycle per frame inspected plus one per line written back.
        cycles = l2.capacity_lines + dirty_writebacks
        self.stats.add("l2.flushes")
        self.stats.add("l2.flush_cycles", cycles)
        return FlushResult(
            cycles=cycles,
            lines_inspected=l2.capacity_lines,
            dirty_writebacks=dirty_writebacks,
            incoherent_dropped=incoherent_dropped,
        )

    def invalidate_incoherent_lines(self, core_id: int) -> int:
        """Drop every incoherent line from a core's private caches.

        Cheaper than a full flush; used when a mute core is re-purposed
        without having observed any coherent state.
        """
        self._check_core(core_id)
        dropped = 0
        for cache in (self.l1d[core_id], self.l1i[core_id], self.l2[core_id]):
            for line in cache.resident_lines():
                if not line.coherent:
                    cache.invalidate(line.line_addr)
                    dropped += 1
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection helpers
    # ------------------------------------------------------------------ #

    def l2_for(self, core_id: int) -> SetAssociativeCache:
        """The private L2 of ``core_id``."""
        self._check_core(core_id)
        return self.l2[core_id]

    def l1d_for(self, core_id: int) -> SetAssociativeCache:
        """The private L1 data cache of ``core_id``."""
        self._check_core(core_id)
        return self.l1d[core_id]

    def c2c_transfer_count(self) -> int:
        """Total dirty cache-to-cache transfers observed so far."""
        return int(self.stats.get("c2c_transfers"))

    def merged_stats(self) -> StatSet:
        """Hierarchy-wide statistics including interconnect and DRAM counters."""
        merged = StatSet(self.stats.as_dict())
        merged.merge(self.interconnect.stats)
        merged.merge(self.memory.stats)
        return merged
