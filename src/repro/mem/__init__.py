"""Memory-system substrate: caches, coherence directory, interconnect, DRAM.

The hierarchy mirrors the paper's target multicore (Section 4.1): per-core
write-through L1 caches and a private L2, a shared L3 that maintains
*exclusion* with the private L2s, a MOSI directory over a point-to-point
interconnect, and 350-cycle main memory behind a 40 GB/s off-chip link.

The central class is :class:`repro.mem.hierarchy.MemoryHierarchy`, which
offers a coherent access path (normal and vocal cores), an *incoherent*
best-effort access path (Reunion mute cores), and the L2 flush operation used
by MMM-TP's Leave-DMR transition.
"""

from repro.mem.cache import SetAssociativeCache
from repro.mem.directory import Directory, DirectoryEntry
from repro.mem.dram import MainMemory
from repro.mem.hierarchy import AccessResult, FlushResult, MemoryHierarchy
from repro.mem.interconnect import Interconnect
from repro.mem.lines import CacheLine, LineState

__all__ = [
    "SetAssociativeCache",
    "Directory",
    "DirectoryEntry",
    "MainMemory",
    "AccessResult",
    "FlushResult",
    "MemoryHierarchy",
    "Interconnect",
    "CacheLine",
    "LineState",
]
