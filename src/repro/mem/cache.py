"""A set-associative cache with LRU replacement.

The same class models every level (L1 I/D, private L2, shared L3); behaviour
differences between levels (write-through, exclusivity with the upper level,
sharing) are implemented by :class:`repro.mem.hierarchy.MemoryHierarchy`,
which owns the caches and orchestrates accesses between them.
"""

from __future__ import annotations

from operator import attrgetter
from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.stats import StatSet
from repro.config.system import CacheConfig
from repro.errors import MemorySystemError
from repro.mem.lines import CacheLine, LineState

_BY_LAST_TOUCH = attrgetter("last_touch")


class SetAssociativeCache:
    """A physically indexed, physically tagged, LRU set-associative cache."""

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._line_bytes = config.line_bytes
        # The line size is validated to be a power of two, so line alignment
        # and set indexing reduce to bit operations on the (non-negative)
        # physical address.
        self._line_neg_mask = -config.line_bytes
        self._line_shift = config.line_bytes.bit_length() - 1
        # When the set count is also a power of two (every standard geometry)
        # the modulo reduces to a mask.
        if config.num_sets & (config.num_sets - 1) == 0:
            self._set_mask: Optional[int] = config.num_sets - 1
        else:
            self._set_mask = None
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        # Flat line-address -> line map mirroring ``_sets``.  Lookups and
        # touches -- by far the most frequent operations -- hit this single
        # dictionary instead of computing a set index and chasing two levels;
        # insert/invalidate keep both structures in sync.
        self._lines: Dict[int, CacheLine] = {}
        self._touch_counter = 0
        self.stats = StatSet()
        # The lookup/touch/insert loops below are the hottest code in the
        # whole simulator; they bump the counter dict directly instead of
        # paying a StatSet.add call per access.
        self._counts = self.stats.counters

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #

    def line_address(self, address: int) -> int:
        """Line-aligned address containing ``address``."""
        return address & self._line_neg_mask

    def _set_index(self, line_addr: int) -> int:
        tag = line_addr >> self._line_shift
        if self._set_mask is not None:
            return tag & self._set_mask
        return tag % self._num_sets

    def _set_for(self, line_addr: int) -> Dict[int, CacheLine]:
        return self._sets.setdefault(self._set_index(line_addr), {})

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def lookup(self, address: int) -> Optional[CacheLine]:
        """Return the line containing ``address`` without updating LRU state."""
        return self._lines.get(address & self._line_neg_mask)

    def touch(self, address: int) -> Optional[CacheLine]:
        """Return the line containing ``address`` and mark it most recently used."""
        line = self._lines.get(address & self._line_neg_mask)
        if line is not None:
            self._touch_counter = counter = self._touch_counter + 1
            line.last_touch = counter
            self._counts["hits"] += 1
        else:
            self._counts["misses"] += 1
        return line

    def insert(
        self,
        address: int,
        state: LineState = LineState.SHARED,
        dirty: bool = False,
        coherent: bool = True,
    ) -> Optional[CacheLine]:
        """Insert the line containing ``address``; return the evicted victim.

        If the line is already present its state/dirty/coherent bits are
        updated in place and no eviction occurs.  When the set is full, the
        least recently used line is evicted and returned so the hierarchy can
        handle any required writeback or victim insertion.
        """
        if state is LineState.INVALID:
            raise MemorySystemError("cannot insert a line in the INVALID state")
        line_addr = address & self._line_neg_mask
        self._touch_counter = counter = self._touch_counter + 1
        existing = self._lines.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.dirty = existing.dirty or dirty
            existing.coherent = coherent
            existing.last_touch = counter
            return None
        tag = line_addr >> self._line_shift
        index = tag & self._set_mask if self._set_mask is not None else tag % self._num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        counts = self._counts
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self._associativity:
            victim = min(cache_set.values(), key=_BY_LAST_TOUCH)
            del cache_set[victim.line_addr]
            del self._lines[victim.line_addr]
            counts["evictions"] += 1
        cache_set[line_addr] = self._lines[line_addr] = CacheLine(
            line_addr, state, dirty, coherent, counter
        )
        counts["fills"] += 1
        return victim

    def fill_shared(self, address: int, coherent: bool = True) -> None:
        """Insert a clean SHARED line, dropping any victim.

        Specialised for the write-through L1s, whose victims never need a
        writeback: this behaves exactly like ``insert(address,
        LineState.SHARED, dirty=False, coherent=coherent)`` with the returned
        victim discarded, but recycles the evicted line object instead of
        allocating a new one (the victim is unreachable once evicted, so the
        reuse is unobservable).
        """
        line_addr = address & self._line_neg_mask
        self._touch_counter = counter = self._touch_counter + 1
        lines = self._lines
        existing = lines.get(line_addr)
        if existing is not None:
            # Same field updates as insert() with dirty=False: the existing
            # dirty bit is left alone.
            existing.state = LineState.SHARED
            existing.coherent = coherent
            existing.last_touch = counter
            return
        tag = line_addr >> self._line_shift
        index = tag & self._set_mask if self._set_mask is not None else tag % self._num_sets
        cache_set = self._sets.get(index)
        if cache_set is None:
            cache_set = self._sets[index] = {}
        counts = self._counts
        if len(cache_set) >= self._associativity:
            if len(cache_set) == 2:
                # Two-way sets (the L1 geometry): direct compare beats min().
                first, second = cache_set.values()
                victim = second if second.last_touch < first.last_touch else first
            else:
                victim = min(cache_set.values(), key=_BY_LAST_TOUCH)
            del cache_set[victim.line_addr]
            del lines[victim.line_addr]
            counts["evictions"] += 1
            victim.line_addr = line_addr
            victim.state = LineState.SHARED
            victim.dirty = False
            victim.coherent = coherent
            victim.last_touch = counter
            cache_set[line_addr] = lines[line_addr] = victim
        else:
            cache_set[line_addr] = lines[line_addr] = CacheLine(
                line_addr, LineState.SHARED, False, coherent, counter
            )
        counts["fills"] += 1

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Remove the line containing ``address`` and return it (or ``None``)."""
        line_addr = address & self._line_neg_mask
        line = self._lines.pop(line_addr, None)
        if line is not None:
            tag = line_addr >> self._line_shift
            index = tag & self._set_mask if self._set_mask is not None else tag % self._num_sets
            del self._sets[index][line_addr]
            self._counts["invalidations"] += 1
        return line

    def mark_dirty(self, address: int) -> None:
        """Mark the line containing ``address`` dirty (it must be present)."""
        line = self.lookup(address)
        if line is None:
            raise MemorySystemError(
                f"{self.config.name}: mark_dirty on absent line {address:#x}"
            )
        line.dirty = True
        if line.state in (LineState.SHARED, LineState.OWNED):
            line.state = LineState.MODIFIED

    def clear(self) -> int:
        """Drop every line; return the number of lines dropped."""
        dropped = len(self._lines)
        self._sets.clear()
        self._lines.clear()
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over every resident line (order unspecified)."""
        for cache_set in self._sets.values():
            yield from cache_set.values()

    def resident_lines(self) -> List[CacheLine]:
        """A list copy of every resident line (useful for flush operations)."""
        return list(self.lines())

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return len(self._lines)

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.config.num_lines

    def contains(self, address: int) -> bool:
        """True when the line containing ``address`` is resident."""
        return self.lookup(address) is not None

    def set_occupancies(self) -> List[Tuple[int, int]]:
        """Per-set ``(index, lines)`` occupancy, for diagnostics and tests."""
        return sorted((index, len(lines)) for index, lines in self._sets.items())

    def miss_rate(self) -> float:
        """Misses divided by total accesses recorded through :meth:`touch`."""
        hits = self.stats.get("hits")
        misses = self.stats.get("misses")
        total = hits + misses
        if total == 0:
            return 0.0
        return misses / total
