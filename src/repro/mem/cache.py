"""A set-associative cache with LRU replacement.

The same class models every level (L1 I/D, private L2, shared L3); behaviour
differences between levels (write-through, exclusivity with the upper level,
sharing) are implemented by :class:`repro.mem.hierarchy.MemoryHierarchy`,
which owns the caches and orchestrates accesses between them.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.common.stats import StatSet
from repro.config.system import CacheConfig
from repro.errors import MemorySystemError
from repro.mem.lines import CacheLine, LineState


class SetAssociativeCache:
    """A physically indexed, physically tagged, LRU set-associative cache."""

    def __init__(self, config: CacheConfig) -> None:
        config.validate()
        self.config = config
        self._num_sets = config.num_sets
        self._associativity = config.associativity
        self._line_bytes = config.line_bytes
        self._sets: Dict[int, Dict[int, CacheLine]] = {}
        self._touch_counter = 0
        self.stats = StatSet()

    # ------------------------------------------------------------------ #
    # Address helpers
    # ------------------------------------------------------------------ #

    def line_address(self, address: int) -> int:
        """Line-aligned address containing ``address``."""
        return address - (address % self._line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self._line_bytes) % self._num_sets

    def _set_for(self, line_addr: int) -> Dict[int, CacheLine]:
        return self._sets.setdefault(self._set_index(line_addr), {})

    # ------------------------------------------------------------------ #
    # Core operations
    # ------------------------------------------------------------------ #

    def lookup(self, address: int) -> Optional[CacheLine]:
        """Return the line containing ``address`` without updating LRU state."""
        line_addr = self.line_address(address)
        return self._set_for(line_addr).get(line_addr)

    def touch(self, address: int) -> Optional[CacheLine]:
        """Return the line containing ``address`` and mark it most recently used."""
        line = self.lookup(address)
        if line is not None:
            self._touch_counter += 1
            line.last_touch = self._touch_counter
            self.stats.add("hits")
        else:
            self.stats.add("misses")
        return line

    def insert(
        self,
        address: int,
        state: LineState = LineState.SHARED,
        dirty: bool = False,
        coherent: bool = True,
    ) -> Optional[CacheLine]:
        """Insert the line containing ``address``; return the evicted victim.

        If the line is already present its state/dirty/coherent bits are
        updated in place and no eviction occurs.  When the set is full, the
        least recently used line is evicted and returned so the hierarchy can
        handle any required writeback or victim insertion.
        """
        if state is LineState.INVALID:
            raise MemorySystemError("cannot insert a line in the INVALID state")
        line_addr = self.line_address(address)
        cache_set = self._set_for(line_addr)
        self._touch_counter += 1
        existing = cache_set.get(line_addr)
        if existing is not None:
            existing.state = state
            existing.dirty = existing.dirty or dirty
            existing.coherent = coherent
            existing.last_touch = self._touch_counter
            return None
        victim: Optional[CacheLine] = None
        if len(cache_set) >= self._associativity:
            victim_addr = min(cache_set, key=lambda addr: cache_set[addr].last_touch)
            victim = cache_set.pop(victim_addr)
            self.stats.add("evictions")
        cache_set[line_addr] = CacheLine(
            line_addr=line_addr,
            state=state,
            dirty=dirty,
            coherent=coherent,
            last_touch=self._touch_counter,
        )
        self.stats.add("fills")
        return victim

    def invalidate(self, address: int) -> Optional[CacheLine]:
        """Remove the line containing ``address`` and return it (or ``None``)."""
        line_addr = self.line_address(address)
        cache_set = self._set_for(line_addr)
        line = cache_set.pop(line_addr, None)
        if line is not None:
            self.stats.add("invalidations")
        return line

    def mark_dirty(self, address: int) -> None:
        """Mark the line containing ``address`` dirty (it must be present)."""
        line = self.lookup(address)
        if line is None:
            raise MemorySystemError(
                f"{self.config.name}: mark_dirty on absent line {address:#x}"
            )
        line.dirty = True
        if line.state in (LineState.SHARED, LineState.OWNED):
            line.state = LineState.MODIFIED

    def clear(self) -> int:
        """Drop every line; return the number of lines dropped."""
        dropped = sum(len(s) for s in self._sets.values())
        self._sets.clear()
        return dropped

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over every resident line (order unspecified)."""
        for cache_set in self._sets.values():
            yield from cache_set.values()

    def resident_lines(self) -> List[CacheLine]:
        """A list copy of every resident line (useful for flush operations)."""
        return list(self.lines())

    @property
    def occupancy(self) -> int:
        """Number of valid lines currently resident."""
        return sum(len(s) for s in self._sets.values())

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.config.num_lines

    def contains(self, address: int) -> bool:
        """True when the line containing ``address`` is resident."""
        return self.lookup(address) is not None

    def set_occupancies(self) -> List[Tuple[int, int]]:
        """Per-set ``(index, lines)`` occupancy, for diagnostics and tests."""
        return sorted((index, len(lines)) for index, lines in self._sets.items())

    def miss_rate(self) -> float:
        """Misses divided by total accesses recorded through :meth:`touch`."""
        hits = self.stats.get("hits")
        misses = self.stats.get("misses")
        total = hits + misses
        if total == 0:
            return 0.0
        return misses / total
