"""Main-memory (DRAM) latency model.

Latency is the configured 350-cycle load-to-use time, stretched by the
interconnect's off-chip contention factor when the 40 GB/s link is
over-subscribed within the current accounting window.
"""

from __future__ import annotations

from repro.common.stats import StatSet
from repro.config.system import MemoryConfig


class MainMemory:
    """Flat DRAM model behind the shared L3."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.stats = StatSet()
        # Hot-path bindings: access_latency runs once per off-chip access and
        # bumps the counter dict directly instead of calling StatSet.add.
        self._counts = self.stats.counters
        self._load_to_use = config.load_to_use_latency

    def access_latency(self, contention_factor: float = 1.0) -> int:
        """Latency of one memory access under the given contention factor."""
        counts = self._counts
        if contention_factor <= 1.0:
            latency = self._load_to_use
        else:
            latency = int(round(self._load_to_use * contention_factor))
            counts["contended_accesses"] += 1
        counts["accesses"] += 1
        counts["total_latency"] += latency
        return latency

    def writeback_latency(self, contention_factor: float = 1.0) -> int:
        """Latency charged for a dirty writeback reaching DRAM.

        Writebacks are posted (they do not stall the requester); the model
        charges a small fixed occupancy cost so that flush-heavy operations
        still consume off-chip bandwidth in the statistics.
        """
        self.stats.add("writebacks")
        return 0

    @property
    def average_latency(self) -> float:
        """Average observed access latency."""
        accesses = self.stats.get("accesses")
        if accesses == 0:
            return 0.0
        return self.stats.get("total_latency") / accesses
