"""Cache line records and MOSI states.

Each line carries, in addition to the usual MOSI coherence state and dirty
bit, the *coherent* bit the paper adds for MMM-TP (Section 3.4.3): a mute
core's cache can simultaneously hold lines fetched incoherently through
Reunion's best-effort path and lines holding VCPU state that were fetched
coherently during a mode switch.  The Leave-DMR flush inspects that bit to
decide whether a dirty line must be written back or simply discarded.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto


class LineState(Enum):
    """MOSI coherence states (plus INVALID for empty ways)."""

    MODIFIED = auto()
    OWNED = auto()
    SHARED = auto()
    INVALID = auto()


@dataclass(slots=True)
class CacheLine:
    """One cache line's bookkeeping state.

    Attributes
    ----------
    line_addr:
        Line-aligned physical address.
    state:
        MOSI state of the line in this cache.
    dirty:
        True when the line holds data newer than the next level.
    coherent:
        False when the line was brought in through a Reunion mute core's
        incoherent request path and therefore must not be written back.
    last_touch:
        Monotonic counter used for LRU replacement inside a set.
    """

    line_addr: int
    state: LineState = LineState.SHARED
    dirty: bool = False
    coherent: bool = True
    last_touch: int = 0

    @property
    def valid(self) -> bool:
        """True when the line holds data."""
        return self.state is not LineState.INVALID

    @property
    def needs_writeback(self) -> bool:
        """True when evicting or flushing this line must write it back.

        Incoherent (mute-fetched) lines are never written back -- Reunion's
        mute core must not expose values outside its private hierarchy.
        """
        return self.valid and self.dirty and self.coherent
