"""MOSI coherence directory.

The paper's target keeps L2 shadow tags co-located with each L3 bank and runs
a MOSI directory protocol over the point-to-point interconnect.  The
reproduction models the directory at line granularity: for each line it
tracks which core's private hierarchy (if any) *owns* the line (holds it in
M or O) and which cores share it.  The hierarchy consults the directory to
decide whether a miss is served by a cache-to-cache transfer (3-hop), the
shared L3 (2-hop), or memory, and to invalidate sharers on stores.

Reunion mute cores issue *incoherent* requests that must not change directory
state; the hierarchy therefore only calls the mutating methods for coherent
requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from repro.common.stats import StatSet


@dataclass
class DirectoryEntry:
    """Tracking state for one line."""

    owner: Optional[int] = None
    sharers: Set[int] = field(default_factory=set)

    @property
    def cached_anywhere(self) -> bool:
        """True when some private hierarchy holds the line."""
        return self.owner is not None or bool(self.sharers)

    def holders(self) -> Set[int]:
        """All cores holding the line (owner plus sharers)."""
        holders = set(self.sharers)
        if self.owner is not None:
            holders.add(self.owner)
        return holders


class Directory:
    """Line-granularity MOSI directory."""

    def __init__(self, line_bytes: int = 64) -> None:
        self._line_bytes = line_bytes
        # Line alignment is a bit operation when the line size is a power of
        # two (the hierarchy always configures one); fall back to the modulo
        # form otherwise.
        self._line_neg_mask = -line_bytes if line_bytes & (line_bytes - 1) == 0 else None
        self._entries: Dict[int, DirectoryEntry] = {}
        self.stats = StatSet()
        # Hot-path binding: the record_* methods below bump counters directly
        # instead of calling StatSet.add once or more per coherence event.
        self._counts = self.stats.counters

    def _line(self, address: int) -> int:
        if self._line_neg_mask is not None:
            return address & self._line_neg_mask
        return address - (address % self._line_bytes)

    def entry(self, address: int) -> DirectoryEntry:
        """Return (creating if needed) the entry for the line of ``address``."""
        mask = self._line_neg_mask
        line = address & mask if mask is not None else address - address % self._line_bytes
        entry = self._entries.get(line)
        if entry is None:
            entry = self._entries[line] = DirectoryEntry()
        return entry

    def peek(self, address: int) -> Optional[DirectoryEntry]:
        """Return the entry for the line of ``address`` without creating it."""
        mask = self._line_neg_mask
        line = address & mask if mask is not None else address - address % self._line_bytes
        return self._entries.get(line)

    def owner_of(self, address: int) -> Optional[int]:
        """Core currently owning the line (M or O state), or ``None``."""
        entry = self.peek(address)
        return entry.owner if entry is not None else None

    def sharers_of(self, address: int) -> Set[int]:
        """Cores sharing the line (excluding the owner)."""
        entry = self.peek(address)
        return set(entry.sharers) if entry is not None else set()

    # ------------------------------------------------------------------ #
    # Coherent transitions
    # ------------------------------------------------------------------ #

    def record_shared_fetch(self, address: int, core_id: int) -> None:
        """Core ``core_id`` fetched the line for reading."""
        entry = self.entry(address)
        if entry.owner != core_id:
            entry.sharers.add(core_id)
        counts = self._counts
        counts["shared_fetches"] += 1

    def record_exclusive_fetch(self, address: int, core_id: int) -> Set[int]:
        """Core ``core_id`` fetched the line for writing.

        Returns the set of other cores that must invalidate their copies (the
        hierarchy charges the invalidation latency and performs the cache
        invalidations).
        """
        entry = self.entry(address)
        to_invalidate = set(entry.sharers)
        if entry.owner is not None:
            to_invalidate.add(entry.owner)
        to_invalidate.discard(core_id)
        entry.owner = core_id
        entry.sharers.clear()
        counts = self._counts
        counts["exclusive_fetches"] += 1
        if to_invalidate:
            counts["invalidation_rounds"] += 1
            counts["invalidations_sent"] += len(
                to_invalidate
            )
        return to_invalidate

    def record_downgrade(self, address: int, core_id: int) -> None:
        """Owner ``core_id`` was downgraded to a sharer (served a C2C read)."""
        entry = self.entry(address)
        if entry.owner == core_id:
            entry.owner = None
            entry.sharers.add(core_id)
            self.stats.add("downgrades")

    def record_eviction(self, address: int, core_id: int) -> None:
        """Core ``core_id`` no longer holds the line."""
        mask = self._line_neg_mask
        line = address & mask if mask is not None else address - address % self._line_bytes
        entry = self._entries.get(line)
        if entry is None:
            return
        if entry.owner == core_id:
            entry.owner = None
        entry.sharers.discard(core_id)
        counts = self._counts
        counts["evictions"] += 1

    def drop_core(self, core_id: int) -> int:
        """Remove ``core_id`` from every entry (used when flushing a core).

        Returns the number of entries that referenced the core.
        """
        touched = 0
        for entry in self._entries.values():
            if entry.owner == core_id or core_id in entry.sharers:
                touched += 1
            if entry.owner == core_id:
                entry.owner = None
            entry.sharers.discard(core_id)
        return touched

    def __len__(self) -> int:
        return len(self._entries)
